package serve

// Online-learning surface (DESIGN.md §14):
//
//	POST /admin/learn  {"action":"refit"}  → synchronous gated refit
//
// plus the osap_learn_* Prometheus families appended by
// writeExtendedProm when a Learner is configured. The server never
// promotes a refit: proposals land in the registry as Proposed
// versions and only the rollout machinery (POST /admin/rollout) can
// ever serve one.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"osap/internal/learn"
)

// learnRequest is the POST /admin/learn body.
type learnRequest struct {
	Action string `json:"action"` // refit
}

func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	l := s.cfg.Learner
	if l == nil {
		s.writeError(w, http.StatusNotImplemented, "online learning is not enabled")
		return
	}
	if s.draining.Load() {
		s.metrics.DrainRejected.Add(1)
		s.rejectBusy(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req learnRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil && err != io.EOF {
		s.writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	switch req.Action {
	case "refit":
		prop, err := l.Refit()
		if err != nil {
			s.writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, prop)
	default:
		s.writeError(w, http.StatusBadRequest, "unknown action %q (want refit)", req.Action)
	}
}

// writeLearnProm appends the online-learning counter families.
func (s *Server) writeLearnProm(w io.Writer) {
	c := s.cfg.Learner.Counters()
	counter := func(name, help string, val uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, val)
	}
	counter("osap_learn_gate_checked_total", "Serving steps judged by the trust gate.", c.Checked.Load())
	counter("osap_learn_gate_admitted_total", "Steps admitted to the experience window.", c.Admitted.Load())
	fmt.Fprintf(w, "# HELP osap_learn_gate_rejected_total Steps rejected by the trust gate, by reason.\n")
	fmt.Fprintf(w, "# TYPE osap_learn_gate_rejected_total counter\n")
	for v := learn.Verdict(1); ; v++ {
		name := v.String()
		if name == "unknown" {
			break
		}
		fmt.Fprintf(w, "osap_learn_gate_rejected_total{reason=%q} %d\n", name, c.Rejected(v))
	}
	fmt.Fprintf(w, "osap_learn_gate_rejected_total{reason=\"demoted\"} %d\n", c.RejectedDemoted.Load())
	counter("osap_learn_ring_dropped_total", "Admitted samples dropped because the handoff ring was full.", c.RingDropped.Load())
	counter("osap_learn_log_records_total", "Records appended to the experience log this run.", c.LogRecords.Load())
	counter("osap_learn_log_segments_sealed_total", "Experience-log segments sealed (fsynced and rotated).", c.LogSegments.Load())
	counter("osap_learn_bootstrap_records_total", "Records replayed from the experience log at startup.", c.BootstrapRecords.Load())
	counter("osap_learn_refits_total", "Successful OC-SVM refits.", c.Refits.Load())
	counter("osap_learn_refit_failures_total", "Refit attempts that failed (insufficient window, training or publish error).", c.RefitFailures.Load())
	counter("osap_learn_proposed_total", "Refits published to the registry as proposed versions.", c.Proposed.Load())
	snap := s.cfg.Learner.Snapshot()
	fmt.Fprintf(w, "# HELP osap_learn_window_fill Feature vectors currently in the refit window.\n")
	fmt.Fprintf(w, "# TYPE osap_learn_window_fill gauge\nosap_learn_window_fill %d\n", snap.WindowFill)
}
