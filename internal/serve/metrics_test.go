package serve

import (
	"bufio"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram()
	// 90 fast observations, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(40e-6) // 40 µs → bucket le=5e-5
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.2) // → bucket le=0.25
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if got, want := h.Sum(), 90*40e-6+10*0.2; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	if q := h.Quantile(0.5); q < 2.5e-5 || q > 5e-5 {
		t.Errorf("p50 = %v, want within (2.5e-5, 5e-5]", q)
	}
	if q := h.Quantile(0.99); q < 0.1 || q > 0.25 {
		t.Errorf("p99 = %v, want within (0.1, 0.25]", q)
	}
}

func TestHistogramOverflowGoesToInf(t *testing.T) {
	h := NewHistogram()
	h.Observe(30) // beyond the last 1 s bound
	if got := h.counts[len(latencyBuckets)].Load(); got != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", got)
	}
}

// promLine matches one Prometheus text-format sample line:
// metric_name{label="v",...} value
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)$`)

// TestWritePromParsesAsPrometheusText renders a populated registry and
// validates the exposition format line by line: every sample matches
// the grammar, every sample's family has HELP/TYPE headers, histogram
// buckets are cumulative and end in +Inf, and _count equals the +Inf
// bucket.
func TestWritePromParsesAsPrometheusText(t *testing.T) {
	m := NewMetrics()
	m.SessionsCreated.Add(7)
	m.SessionsRejected.Add(2)
	m.Decisions.Add(100)
	m.Fallbacks.Add(13)
	m.TriggerFirings.Add(3)
	for i := 0; i < 50; i++ {
		m.Latency("step").Observe(float64(i+1) * 1e-4)
	}
	m.Latency("create").Observe(3e-3)

	var b strings.Builder
	if err := m.WriteProm(&b, 42, 3, 1); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	typed := map[string]string{} // family → type
	var lastBucket struct {
		endpoint string
		cum      uint64
		sawInf   bool
	}
	counts := map[string]uint64{} // endpoint → _count value
	infCum := map[string]uint64{} // endpoint → +Inf cumulative
	samples := 0

	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment form: %q", line)
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line does not parse as a Prometheus sample: %q", line)
		}
		samples++
		name := line[:strings.IndexAny(line, "{ ")]
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[family]; !ok {
			t.Errorf("sample %q has no TYPE header for family %q", name, family)
		}

		if strings.HasPrefix(name, "osap_request_duration_seconds") {
			ep := labelValue(t, line, "endpoint")
			valStr := line[strings.LastIndex(line, " ")+1:]
			switch {
			case strings.HasSuffix(name, "_bucket"):
				v, err := strconv.ParseUint(valStr, 10, 64)
				if err != nil {
					t.Fatalf("bucket value %q: %v", valStr, err)
				}
				if lastBucket.endpoint == ep && v < lastBucket.cum {
					t.Errorf("endpoint %q: bucket counts not cumulative (%d after %d)", ep, v, lastBucket.cum)
				}
				lastBucket.endpoint, lastBucket.cum = ep, v
				if labelValue(t, line, "le") == "+Inf" {
					infCum[ep] = v
					lastBucket = struct {
						endpoint string
						cum      uint64
						sawInf   bool
					}{}
				}
			case strings.HasSuffix(name, "_count"):
				v, _ := strconv.ParseUint(valStr, 10, 64)
				counts[ep] = v
			}
		}
	}
	if samples < 12 {
		t.Fatalf("only %d samples rendered:\n%s", samples, out)
	}
	if typed["osap_sessions_live"] != "gauge" {
		t.Errorf("osap_sessions_live TYPE = %q, want gauge", typed["osap_sessions_live"])
	}
	if typed["osap_decisions_total"] != "counter" {
		t.Errorf("osap_decisions_total TYPE = %q, want counter", typed["osap_decisions_total"])
	}
	if typed["osap_request_duration_seconds"] != "histogram" {
		t.Errorf("latency TYPE = %q, want histogram", typed["osap_request_duration_seconds"])
	}
	for _, ep := range []string{"step", "create"} {
		if counts[ep] == 0 {
			t.Errorf("endpoint %q: no _count sample", ep)
		}
		if counts[ep] != infCum[ep] {
			t.Errorf("endpoint %q: _count %d != +Inf bucket %d", ep, counts[ep], infCum[ep])
		}
	}
	if counts["step"] != 50 {
		t.Errorf("step _count = %d, want 50", counts["step"])
	}
	if !strings.Contains(out, "osap_sessions_live 42") {
		t.Errorf("live gauge missing the passed value:\n%s", out)
	}
}

func labelValue(t *testing.T, line, label string) string {
	t.Helper()
	re := regexp.MustCompile(label + `="([^"]*)"`)
	m := re.FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("line %q has no %s label", line, label)
	}
	return m[1]
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 1000; i++ {
				h.Observe(1e-4)
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if h.Count() != 4000 {
		t.Fatalf("Count = %d, want 4000", h.Count())
	}
	if got, want := h.Sum(), 0.4; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}
