package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func tableSession(id string, at time.Time) *Session {
	return newSession(id, SchemeND, nil, at)
}

func TestTableShardCountRoundsUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {65, 128},
	} {
		if got := NewTable(tc.in, 0).Shards(); got != tc.want {
			t.Errorf("NewTable(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestTableAdmissionCap(t *testing.T) {
	now := time.Now()
	tb := NewTable(4, 3)
	for i := 0; i < 3; i++ {
		if err := tb.Put(tableSession(fmt.Sprintf("s%d", i), now)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := tb.Put(tableSession("s3", now)); !errors.Is(err, ErrTableFull) {
		t.Fatalf("put past cap: err = %v, want ErrTableFull", err)
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d after rejected put, want 3", tb.Len())
	}
	// Deleting reopens capacity.
	if _, ok := tb.Delete("s1"); !ok {
		t.Fatal("delete s1 failed")
	}
	if err := tb.Put(tableSession("s3", now)); err != nil {
		t.Fatalf("put after delete: %v", err)
	}
	if _, ok := tb.Get("s3"); !ok {
		t.Fatal("s3 not found after put")
	}
}

func TestTableDuplicateID(t *testing.T) {
	now := time.Now()
	tb := NewTable(4, 0)
	if err := tb.Put(tableSession("dup", now)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Put(tableSession("dup", now)); err == nil {
		t.Fatal("duplicate put succeeded")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after duplicate rejection, want 1", tb.Len())
	}
}

func TestTableSweepEvictsOnlyIdle(t *testing.T) {
	base := time.Now()
	tb := NewTable(8, 0)
	stale := tableSession("stale", base.Add(-time.Hour))
	fresh := tableSession("fresh", base)
	if err := tb.Put(stale); err != nil {
		t.Fatal(err)
	}
	if err := tb.Put(fresh); err != nil {
		t.Fatal(err)
	}
	if n := tb.Sweep(base.Add(-time.Minute)); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	if _, ok := tb.Get("stale"); ok {
		t.Error("stale session survived the sweep")
	}
	if _, ok := tb.Get("fresh"); !ok {
		t.Error("fresh session was evicted")
	}
	// The evicted session is closed: steps on a stale handle fail.
	if _, err := stale.Step(nil, base); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("step on evicted session: err = %v, want ErrSessionClosed", err)
	}
}

// TestTableConcurrentAccess drives puts, gets, deletes and sweeps from
// many goroutines; run under -race this is the table's memory-safety
// proof.
func TestTableConcurrentAccess(t *testing.T) {
	tb := NewTable(8, 256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := tb.Put(tableSession(id, time.Now())); err != nil {
					continue
				}
				tb.Get(id)
				if i%3 == 0 {
					tb.Delete(id)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tb.Sweep(time.Now().Add(-time.Hour)) // nothing is that old
			tb.Range(func(*Session) {})
		}
	}()
	wg.Wait()
	if tb.Len() < 0 || tb.Len() > 256 {
		t.Fatalf("Len = %d out of range after concurrent churn", tb.Len())
	}
	n := 0
	tb.Range(func(*Session) { n++ })
	if n != tb.Len() {
		t.Fatalf("Range saw %d sessions, Len reports %d", n, tb.Len())
	}
	if cleared := tb.Clear(); cleared != n {
		t.Fatalf("Clear removed %d, want %d", cleared, n)
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after Clear, want 0", tb.Len())
	}
}
