package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTableFull is returned by Table.Put when admission control rejects
// a new session (the server maps it to 429 + Retry-After).
var ErrTableFull = errors.New("serve: session table full")

// Table is a sharded session registry. Session IDs are FNV-1a hashed
// onto a power-of-two number of shards, each guarded by its own
// RWMutex, so lookups from thousands of concurrent step requests never
// contend on a global lock. The live count is a single atomic used for
// admission control.
type Table struct {
	shards  []tableShard
	mask    uint64
	live    atomic.Int64
	max     int64
	onClose func(*Session)
}

type tableShard struct {
	mu sync.RWMutex
	//osap:guardedby mu
	m map[string]*Session
	// Pad the shard to its own cache lines so neighboring shard locks
	// don't false-share under heavy step traffic.
	_ [64]byte
}

// NewTable builds a table with the given shard count (rounded up to a
// power of two, minimum 1) and live-session cap (≤ 0 means unlimited).
func NewTable(shards int, maxSessions int) *Table {
	n := 1
	for n < shards {
		n <<= 1
	}
	t := &Table{shards: make([]tableShard, n), mask: uint64(n - 1), max: int64(maxSessions)}
	for i := range t.shards {
		//osap:ignore guardedby construction: the table is not shared yet
		t.shards[i].m = make(map[string]*Session)
	}
	return t
}

// fnv1a hashes a session ID (inlined FNV-1a, no allocation).
//
//osap:hotpath
func fnv1a(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

func (t *Table) shard(id string) *tableShard {
	return &t.shards[fnv1a(id)&t.mask]
}

// SetOnClose registers a callback invoked (outside shard locks) each
// time the table closes a session — delete, sweep or clear. The server
// uses it to keep the demoted-live gauge honest as demoted sessions
// depart. Must be set before the table is shared; the callback must
// not call back into the table.
func (t *Table) SetOnClose(f func(*Session)) { t.onClose = f }

func (t *Table) closed(s *Session) {
	if t.onClose != nil {
		t.onClose(s)
	}
}

// Len returns the number of live sessions.
func (t *Table) Len() int { return int(t.live.Load()) }

// Shards returns the shard count (for /healthz and tests).
func (t *Table) Shards() int { return len(t.shards) }

// Put admits a session, enforcing the cap. The increment-then-check
// pattern keeps admission O(1): a loser that pushes the count past max
// rolls back and reports ErrTableFull.
func (t *Table) Put(s *Session) error {
	if n := t.live.Add(1); t.max > 0 && n > t.max {
		t.live.Add(-1)
		return ErrTableFull
	}
	sh := t.shard(s.id)
	sh.mu.Lock()
	if _, dup := sh.m[s.id]; dup {
		sh.mu.Unlock()
		t.live.Add(-1)
		return errors.New("serve: duplicate session id")
	}
	sh.m[s.id] = s
	sh.mu.Unlock()
	return nil
}

// Get looks a session up by ID.
func (t *Table) Get(id string) (*Session, bool) {
	sh := t.shard(id)
	sh.mu.RLock()
	s, ok := sh.m[id]
	sh.mu.RUnlock()
	return s, ok
}

// Delete removes and closes a session, returning it if it existed.
func (t *Table) Delete(id string) (*Session, bool) {
	sh := t.shard(id)
	sh.mu.Lock()
	s, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	if s.close() {
		t.closed(s)
	}
	t.live.Add(-1)
	return s, true
}

// Sweep evicts sessions idle since before cutoff and returns how many
// it removed. Candidates are collected under each shard's read lock
// first, then removed one by one, so a sweep never blocks a whole
// shard while closing sessions.
func (t *Table) Sweep(cutoff time.Time) int {
	evicted := 0
	var stale []string
	for i := range t.shards {
		sh := &t.shards[i]
		stale = stale[:0]
		sh.mu.RLock()
		for id, s := range sh.m {
			if s.idleSince().Before(cutoff) {
				stale = append(stale, id)
			}
		}
		sh.mu.RUnlock()
		for _, id := range stale {
			sh.mu.Lock()
			s, ok := sh.m[id]
			// Re-check idleness under the write lock: the session may
			// have been touched between collection and removal.
			if ok && s.idleSince().Before(cutoff) {
				delete(sh.m, id)
			} else {
				ok = false
			}
			sh.mu.Unlock()
			if ok {
				if s.close() {
					t.closed(s)
				}
				t.live.Add(-1)
				evicted++
			}
		}
	}
	return evicted
}

// Range calls f on every live session (used by drain). f must not call
// back into the table.
func (t *Table) Range(f func(*Session)) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		ss := make([]*Session, 0, len(sh.m))
		for _, s := range sh.m {
			ss = append(ss, s)
		}
		sh.mu.RUnlock()
		for _, s := range ss {
			f(s)
		}
	}
}

// Clear closes and removes every session, returning how many were
// live (used by drain).
func (t *Table) Clear() int {
	n := 0
	var ss []*Session
	for i := range t.shards {
		sh := &t.shards[i]
		ss = ss[:0]
		sh.mu.Lock()
		for id, s := range sh.m {
			delete(sh.m, id)
			ss = append(ss, s)
		}
		sh.mu.Unlock()
		// Close outside the shard lock, matching Delete/Sweep.
		for _, s := range ss {
			if s.close() {
				t.closed(s)
			}
			n++
		}
	}
	t.live.Add(int64(-n))
	return n
}
