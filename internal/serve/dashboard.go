package serve

// Fleet observability and rollout control endpoints:
//
//	GET  /dashboard      JSON: versions, canary state, drift quantiles
//	POST /admin/rollout  {"action":"stage|promote|rollback", ...}
//
// plus the extended Prometheus families appended after the base
// metrics: osap_build_info, per-version counters, rollout gauges and
// drift-score quantiles.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"osap/internal/buildinfo"
	"osap/internal/sketch"
)

// driftQuantiles is one merged sketch's summary for the dashboard.
// Quantile fields are zero (not NaN, which JSON cannot carry) when the
// sketch is empty.
type driftQuantiles struct {
	Count   uint64  `json:"count"`
	Dropped uint64  `json:"dropped,omitempty"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
}

func summarizeSketch(sk *sketch.Sketch) driftQuantiles {
	q := driftQuantiles{Count: sk.Count(), Dropped: sk.Dropped()}
	if q.Count == 0 {
		return q
	}
	q.Min, q.Max = sk.Min(), sk.Max()
	q.P50 = sk.Quantile(0.50)
	q.P90 = sk.Quantile(0.90)
	q.P99 = sk.Quantile(0.99)
	return q
}

// dashboardVersion is one generation's row in the dashboard document.
type dashboardVersion struct {
	Version      string  `json:"version"`
	Checksum     string  `json:"checksum,omitempty"`
	Role         string  `json:"role"` // active | candidate | retired
	Sessions     uint64  `json:"sessions_total"`
	SessionsLive int64   `json:"sessions_live"`
	Decisions    uint64  `json:"decisions_total"`
	Fallbacks    uint64  `json:"fallbacks_total"`
	Demotions    uint64  `json:"demotions_total"`
	Degraded     uint64  `json:"degraded_steps_total"`
	Recovered    uint64  `json:"recovered_total"`
	Redemoted    uint64  `json:"redemoted_total"`
	Latched      uint64  `json:"latched_total"`
	FallbackRate float64 `json:"fallback_rate"`
	// DemotionRate is permanent latches per session — the rate the
	// rollout controller judges; probation-recovered excursions are
	// excluded (DESIGN.md §13).
	DemotionRate float64                   `json:"demotion_rate"`
	LatencyP50Us float64                   `json:"latency_p50_us"`
	LatencyP99Us float64                   `json:"latency_p99_us"`
	Drift        map[string]driftQuantiles `json:"drift"`
}

func (s *Server) versionRow(g *Generation, role string) dashboardVersion {
	st := g.stats
	row := dashboardVersion{
		Version:      g.version,
		Checksum:     g.checksum,
		Role:         role,
		Sessions:     st.Sessions.Load(),
		SessionsLive: st.Live.Load(),
		Decisions:    st.Decisions.Load(),
		Fallbacks:    st.Fallbacks.Load(),
		Demotions:    st.Demotions.Load(),
		Degraded:     st.Degraded.Load(),
		Recovered:    st.Recovered.Load(),
		Redemoted:    st.Redemoted.Load(),
		Latched:      st.Latched.Load(),
		LatencyP50Us: st.Latency.Quantile(0.50) * 1e6,
		LatencyP99Us: st.Latency.Quantile(0.99) * 1e6,
		Drift:        make(map[string]driftQuantiles, driftSignals),
	}
	if row.Decisions > 0 {
		row.FallbackRate = float64(row.Fallbacks) / float64(row.Decisions)
	}
	if row.Sessions > 0 {
		row.DemotionRate = float64(row.Latched) / float64(row.Sessions)
	}
	for sig := 0; sig < driftSignals; sig++ {
		row.Drift[driftSignalNames[sig]] = summarizeSketch(g.drift.Merged(sig))
	}
	return row
}

// roleOf labels a generation relative to the current rollout state.
func (s *Server) roleOf(g *Generation) string {
	switch g {
	case s.rollout.Active():
		return "active"
	case s.rollout.Candidate():
		return "candidate"
	default:
		return "retired"
	}
}

func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	// A controller pass first: a quiescent fleet (no steps arriving)
	// still promotes or rolls back when someone looks.
	s.rollout.evaluate(s.cfg.Now())

	gens := s.rollout.generations()
	rows := make([]dashboardVersion, 0, len(gens))
	for _, g := range gens {
		rows = append(rows, s.versionRow(g, s.roleOf(g)))
	}
	doc := map[string]any{
		"build_version": buildinfo.Version,
		"dataset":       s.factory.Dataset(),
		"draining":      s.draining.Load(),
		"live_sessions": s.table.Len(),
		"versions":      rows,
		"rollout": map[string]any{
			"active":          s.rollout.Active().Version(),
			"candidate":       candidateVersion(s.rollout),
			"canary_fraction": s.rollout.CanaryFraction(),
			"promotions":      s.rollout.promotions.Load(),
			"rollbacks":       s.rollout.rollbacks.Load(),
			"events":          s.rollout.Events(),
		},
	}
	if s.cfg.ListVersions != nil {
		doc["registry_versions"] = s.cfg.ListVersions()
	}
	if s.cfg.ListProposed != nil {
		// Pending online-learning refits, surfaced apart from the
		// promotable set so operators see them without tailing logs.
		doc["registry_proposed"] = s.cfg.ListProposed()
	}
	if l := s.cfg.Learner; l != nil {
		doc["learn"] = l.Snapshot()
	}
	writeJSON(w, http.StatusOK, doc)
}

func candidateVersion(r *Rollout) string {
	if cand := r.Candidate(); cand != nil {
		return cand.Version()
	}
	return ""
}

// rolloutRequest is the POST /admin/rollout body.
type rolloutRequest struct {
	Action   string  `json:"action"` // stage | promote | rollback
	Version  string  `json:"version,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	Reason   string  `json:"reason,omitempty"`
}

func (s *Server) handleRollout(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.metrics.DrainRejected.Add(1)
		s.rejectBusy(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req rolloutRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	now := s.cfg.Now()
	switch req.Action {
	case "stage":
		if req.Version == "" {
			s.writeError(w, http.StatusBadRequest, "stage requires a version")
			return
		}
		gen, err := s.stageVersion(req.Version, req.Fraction)
		if err != nil {
			code := http.StatusConflict
			if s.cfg.LoadVersion == nil {
				code = http.StatusNotImplemented
			}
			s.writeError(w, code, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"staged":          gen.Version(),
			"checksum":        gen.Checksum(),
			"active":          s.rollout.Active().Version(),
			"canary_fraction": s.rollout.CanaryFraction(),
		})
	case "promote":
		gen, err := s.rollout.Promote(orDefault(req.Reason, "manual promote"), false, now)
		if err != nil {
			s.writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"promoted": gen.Version(), "active": gen.Version()})
	case "rollback":
		gen, err := s.rollout.Rollback(orDefault(req.Reason, "manual rollback"), false, now)
		if err != nil {
			s.writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"rolled_back": gen.Version(),
			"active":      s.rollout.Active().Version(),
		})
	default:
		s.writeError(w, http.StatusBadRequest, "unknown action %q (want stage, promote or rollback)", req.Action)
	}
}

func orDefault(s, def string) string {
	if s != "" {
		return s
	}
	return def
}

// stageVersion loads, validates and stages a named artifact version as
// the canary candidate. Requires Config.LoadVersion (the registry
// binding); without it the server is a fixed-artifact deployment and
// staging is unsupported.
func (s *Server) stageVersion(version string, fraction float64) (*Generation, error) {
	if s.cfg.LoadVersion == nil {
		return nil, fmt.Errorf("serve: no artifact registry configured; staging unavailable")
	}
	// A version staged before (then promoted away from or rolled back)
	// is reused with its stats and batcher intact.
	if existing := s.rollout.lookup(version); existing != nil {
		return s.rollout.Stage(existing, fraction, s.cfg.Now())
	}
	arts, checksum, err := s.cfg.LoadVersion(version)
	if err != nil {
		return nil, err
	}
	f, err := NewGuardFactory(arts, s.factory.cfg)
	if err != nil {
		return nil, err
	}
	// Sessions bind a version at admission but clients negotiate
	// obs/action dims once, so every generation must agree on the
	// interface contract.
	if f.ObsDim() != s.factory.ObsDim() || f.NumActions() != s.factory.NumActions() {
		return nil, fmt.Errorf("serve: version %s has obs_dim=%d num_actions=%d, incompatible with serving contract obs_dim=%d num_actions=%d",
			version, f.ObsDim(), f.NumActions(), s.factory.ObsDim(), s.factory.NumActions())
	}
	if f.Dataset() != s.factory.Dataset() {
		return nil, fmt.Errorf("serve: version %s serves dataset %q, server is bound to %q",
			version, f.Dataset(), s.factory.Dataset())
	}
	gen := newGeneration(version, checksum, f, nil)
	if !s.cfg.Batch.Disable {
		b, err := newBatcher(f, s.metrics, s.cfg.Batch)
		if err != nil {
			return nil, err
		}
		gen.batcher = b
	}
	staged, err := s.rollout.Stage(gen, fraction, s.cfg.Now())
	if err != nil || staged != gen {
		// Either the stage was refused or a concurrent stage of the same
		// version won with a cached generation; this one never served.
		if gen.batcher != nil {
			gen.batcher.Stop()
		}
	}
	return staged, err
}

// writeExtendedProm appends the rollout/version/drift families after
// the base metrics.
func (s *Server) writeExtendedProm(w io.Writer) {
	act := s.rollout.Active()
	fmt.Fprintf(w, "# HELP osap_build_info Build and active artifact identity (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE osap_build_info gauge\n")
	fmt.Fprintf(w, "osap_build_info{version=%q,artifact_version=%q,artifact_sha256=%q} 1\n",
		buildinfo.Version, act.Version(), act.Checksum())

	fmt.Fprintf(w, "# HELP osap_rollout_canary_fraction Fraction of new sessions routed to the candidate.\n")
	fmt.Fprintf(w, "# TYPE osap_rollout_canary_fraction gauge\nosap_rollout_canary_fraction %s\n",
		promFloat(s.rollout.CanaryFraction()))
	fmt.Fprintf(w, "# HELP osap_rollout_promotions_total Candidate promotions (manual and automatic).\n")
	fmt.Fprintf(w, "# TYPE osap_rollout_promotions_total counter\nosap_rollout_promotions_total %d\n",
		s.rollout.promotions.Load())
	fmt.Fprintf(w, "# HELP osap_rollout_rollbacks_total Candidate rollbacks (manual and automatic).\n")
	fmt.Fprintf(w, "# TYPE osap_rollout_rollbacks_total counter\nosap_rollout_rollbacks_total %d\n",
		s.rollout.rollbacks.Load())

	gens := s.rollout.generations()
	fmt.Fprintf(w, "# HELP osap_version_info Loaded artifact versions and their rollout role.\n")
	fmt.Fprintf(w, "# TYPE osap_version_info gauge\n")
	for _, g := range gens {
		fmt.Fprintf(w, "osap_version_info{version=%q,sha256=%q,role=%q} 1\n",
			g.Version(), g.Checksum(), s.roleOf(g))
	}
	family := func(name, help, typ string, val func(*Generation) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, g := range gens {
			fmt.Fprintf(w, "%s{version=%q} %d\n", name, g.Version(), val(g))
		}
	}
	family("osap_version_sessions_total", "Sessions admitted per artifact version.", "counter",
		func(g *Generation) uint64 { return g.stats.Sessions.Load() })
	family("osap_version_sessions_live", "Live sessions pinned per artifact version.", "gauge",
		func(g *Generation) uint64 { return uint64(max64(g.stats.Live.Load(), 0)) })
	family("osap_version_decisions_total", "Decisions served per artifact version.", "counter",
		func(g *Generation) uint64 { return g.stats.Decisions.Load() })
	family("osap_version_fallbacks_total", "Default-policy decisions per artifact version.", "counter",
		func(g *Generation) uint64 { return g.stats.Fallbacks.Load() })
	family("osap_version_demotions_total", "Demotion events per artifact version.", "counter",
		func(g *Generation) uint64 { return g.stats.Demotions.Load() })
	family("osap_version_degraded_steps_total", "Degraded-mode steps per artifact version.", "counter",
		func(g *Generation) uint64 { return g.stats.Degraded.Load() })
	family("osap_version_recovered_total", "Probation re-admissions per artifact version.", "counter",
		func(g *Generation) uint64 { return g.stats.Recovered.Load() })
	family("osap_version_redemoted_total", "Repeat demotions per artifact version.", "counter",
		func(g *Generation) uint64 { return g.stats.Redemoted.Load() })
	family("osap_version_latched_total", "Permanently latched demotions per artifact version.", "counter",
		func(g *Generation) uint64 { return g.stats.Latched.Load() })

	fmt.Fprintf(w, "# HELP osap_drift_score Guard-score quantiles per version and signal (merged t-digest).\n")
	fmt.Fprintf(w, "# TYPE osap_drift_score gauge\n")
	fmt.Fprintf(w, "# HELP osap_drift_observations_total Guard scores folded into the drift sketches.\n")
	fmt.Fprintf(w, "# TYPE osap_drift_observations_total counter\n")
	for _, g := range gens {
		for sig := 0; sig < driftSignals; sig++ {
			sk := g.drift.Merged(sig)
			fmt.Fprintf(w, "osap_drift_observations_total{version=%q,signal=%q} %d\n",
				g.Version(), driftSignalNames[sig], sk.Count())
			if sk.Count() == 0 {
				continue
			}
			for _, q := range [...]float64{0.5, 0.9, 0.99} {
				fmt.Fprintf(w, "osap_drift_score{version=%q,signal=%q,quantile=%q} %s\n",
					g.Version(), driftSignalNames[sig], promFloat(q), promFloat(sk.Quantile(q)))
			}
		}
	}

	if s.cfg.Learner != nil {
		s.writeLearnProm(w)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
