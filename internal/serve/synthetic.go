package serve

import (
	"fmt"

	"osap/internal/core"
	"osap/internal/experiments"
	"osap/internal/nn"
	"osap/internal/ocsvm"
	"osap/internal/rl"
	"osap/internal/stats"
)

// SyntheticArtifacts builds a full artifact set with freshly
// initialized (untrained) networks and an OC-SVM fitted on a synthetic
// in-distribution throughput series. Inference cost is identical to
// trained artifacts — the weights just encode no policy — so this is
// the cheap substrate for serve tests and load benchmarks where
// decision quality is irrelevant. ensemble ≥ 2 enables all three
// schemes.
func SyntheticArtifacts(dataset string, ensemble int, seed uint64) (*experiments.Artifacts, error) {
	if ensemble < 2 {
		return nil, fmt.Errorf("serve: synthetic artifacts need ensemble ≥ 2, got %d", ensemble)
	}
	cfg := rl.DefaultNetConfig()
	agents := make([]*rl.ActorCritic, ensemble)
	for i := range agents {
		ac, err := rl.NewActorCritic(cfg, seed+uint64(i)*0x9E37)
		if err != nil {
			return nil, err
		}
		agents[i] = ac
	}

	// The value ensemble reuses the agents' critics: same architecture
	// and cost as trained value nets.
	valueNets := make([]*nn.Network, ensemble)
	for i, a := range agents {
		valueNets[i] = a.Critic
	}

	// Fit the OC-SVM on a mildly noisy stationary series so U_S has a
	// well-defined in-distribution region.
	rng := stats.NewRNG(seed ^ 0x0C5)
	sigCfg := core.DefaultStateSignalConfig()
	series := make([]float64, 400)
	for i := range series {
		series[i] = 3 + 0.5*rng.NormFloat64()
	}
	feats := core.BuildStateFeatures(series, sigCfg)
	model, err := ocsvm.Train(feats, ocsvm.DefaultConfig())
	if err != nil {
		return nil, err
	}

	return &experiments.Artifacts{
		Dataset:   dataset,
		Agents:    agents,
		ValueNets: valueNets,
		OCSVM:     model,
		AlphaPi:   0.05,
		AlphaV:    0.05,
	}, nil
}
