package serve

import (
	"context"
	"io"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"osap/internal/serve/proto"
)

// binClient is a minimal binary-protocol client for tests: dial,
// handshake, then typed frame exchanges on explicit channel ids.
type binClient struct {
	t  *testing.T
	nc net.Conn
	pc *proto.Conn
	w  proto.Welcome
}

func dialBinary(t *testing.T, addr string) *binClient {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := &binClient{t: t, nc: nc, pc: proto.NewConn(nc)}
	if err := c.pc.WriteHello(); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.pc.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ == proto.TypeGoAway {
		t.Fatalf("handshake refused: %s", payload)
	}
	if typ != proto.TypeWelcome {
		t.Fatalf("handshake: frame type %d, want Welcome", typ)
	}
	if c.w, err = proto.DecodeWelcome(payload); err != nil {
		t.Fatal(err)
	}
	return c
}

func (c *binClient) open(cid uint32, scheme string) string {
	c.t.Helper()
	if err := c.pc.WriteOpen(cid, scheme); err != nil {
		c.t.Fatal(err)
	}
	typ, payload, err := c.pc.ReadFrame()
	if err != nil {
		c.t.Fatal(err)
	}
	if typ != proto.TypeOpened {
		_, code, msg, _ := proto.DecodeError(payload)
		c.t.Fatalf("open %s: frame type %d (%s)", scheme, typ, proto.ErrorString(code, msg))
	}
	got, id, err := proto.DecodeOpened(payload)
	if err != nil {
		c.t.Fatal(err)
	}
	if got != cid {
		c.t.Fatalf("open %s: reply addressed to cid %d, want %d", scheme, got, cid)
	}
	return id
}

// openErr sends an Open expected to fail and returns the error frame.
func (c *binClient) openErr(cid uint32, scheme string) (uint16, string) {
	c.t.Helper()
	if err := c.pc.WriteOpen(cid, scheme); err != nil {
		c.t.Fatal(err)
	}
	typ, payload, err := c.pc.ReadFrame()
	if err != nil {
		c.t.Fatal(err)
	}
	if typ != proto.TypeError {
		c.t.Fatalf("open: frame type %d, want Error", typ)
	}
	_, code, msg, err := proto.DecodeError(payload)
	if err != nil {
		c.t.Fatal(err)
	}
	return code, msg
}

func (c *binClient) step(cid, seq uint32, obs []float64) (proto.Decision, error) {
	if err := c.pc.WriteStep(cid, seq, obs); err != nil {
		return proto.Decision{}, err
	}
	typ, payload, err := c.pc.ReadFrame()
	if err != nil {
		return proto.Decision{}, err
	}
	if typ != proto.TypeDecision {
		_, code, msg, _ := proto.DecodeError(payload)
		return proto.Decision{}, &binError{typ: typ, code: code, msg: msg}
	}
	d, err := proto.DecodeDecision(payload)
	if err == nil && d.Cid != cid {
		c.t.Fatalf("decision addressed to cid %d, want %d", d.Cid, cid)
	}
	return d, err
}

type binError struct {
	typ  proto.Type
	code uint16
	msg  string
}

func (e *binError) Error() string { return proto.ErrorString(e.code, e.msg) }

// sessionControl sends a cid-scoped Reset/Close and expects an OK
// addressed to the same channel.
func (c *binClient) sessionControl(t proto.Type, cid uint32) {
	c.t.Helper()
	if err := c.pc.WriteSessionControl(t, cid); err != nil {
		c.t.Fatal(err)
	}
	typ, payload, err := c.pc.ReadFrame()
	if err != nil {
		c.t.Fatal(err)
	}
	if typ != proto.TypeOK {
		_, code, msg, _ := proto.DecodeError(payload)
		c.t.Fatalf("control %d: response type %d (%s), want OK", t, typ, proto.ErrorString(code, msg))
	}
	if got, err := proto.DecodeCid(payload); err != nil || got != cid {
		c.t.Fatalf("control %d: OK addressed to cid %d (%v), want %d", t, got, err, cid)
	}
}

func (c *binClient) ping() {
	c.t.Helper()
	if err := c.pc.WriteControl(proto.TypePing, nil); err != nil {
		c.t.Fatal(err)
	}
	typ, _, err := c.pc.ReadFrame()
	if err != nil || typ != proto.TypePong {
		c.t.Fatalf("ping: response type %d err %v, want Pong", typ, err)
	}
}

func binaryTestServer(t *testing.T, batch BatchConfig) (*Server, string) {
	t.Helper()
	s := batchTestServer(t, batch)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go s.ServeBinary(ln) //nolint:errcheck // returns on listener close
	return s, ln.Addr().String()
}

// TestBinaryEndToEnd multiplexes sessions across all three schemes on
// ONE connection, pipelines every lane's step per round so the batching
// collector sees them together, and checks every decision is
// bit-identical to a sequential reference replay — the same equivalence
// property as the HTTP path, over the multiplexed wire format.
func TestBinaryEndToEnd(t *testing.T) {
	s, addr := binaryTestServer(t, BatchConfig{Window: time.Millisecond, MaxBatch: 64, Collectors: 1})
	defer s.Drain(context.Background(), io.Discard) //nolint:errcheck

	schemes := s.factory.Schemes()
	const perScheme, steps = 2, 40
	dim := s.factory.ObsDim()

	type lane struct {
		scheme string
		stream [][]float64
		got    []proto.Decision
	}
	var lanes []*lane
	for si, scheme := range schemes {
		for k := 0; k < perScheme; k++ {
			lanes = append(lanes, &lane{
				scheme: scheme,
				stream: obsStream(uint64(40+si*10+k), dim, steps),
			})
		}
	}

	c := dialBinary(t, addr)
	defer c.nc.Close()
	if c.w.ObsDim != dim || c.w.NumActions != s.factory.NumActions() {
		t.Fatalf("welcome dims %d/%d, want %d/%d", c.w.ObsDim, c.w.NumActions, dim, s.factory.NumActions())
	}
	for ci, ln := range lanes {
		c.open(uint32(ci), ln.scheme)
	}
	if got := s.Sessions(); got != len(lanes) {
		t.Fatalf("%d sessions open, want %d", got, len(lanes))
	}

	// Pipeline one step per lane, then collect the round's decisions in
	// whatever order the coalescing writer emits them.
	for i := 0; i < steps; i++ {
		for ci, ln := range lanes {
			if err := c.pc.WriteStep(uint32(ci), uint32(i), ln.stream[i]); err != nil {
				t.Fatal(err)
			}
		}
		for range lanes {
			typ, payload, err := c.pc.ReadFrame()
			if err != nil {
				t.Fatal(err)
			}
			if typ != proto.TypeDecision {
				_, code, msg, _ := proto.DecodeError(payload)
				t.Fatalf("round %d: frame type %d (%s)", i, typ, proto.ErrorString(code, msg))
			}
			d, err := proto.DecodeDecision(payload)
			if err != nil {
				t.Fatal(err)
			}
			if int(d.Cid) >= len(lanes) || d.Seq != uint32(i) {
				t.Fatalf("round %d: decision cid %d seq %d", i, d.Cid, d.Seq)
			}
			lanes[d.Cid].got = append(lanes[d.Cid].got, d)
		}
	}
	if s.metrics.BatchSize.Count() == 0 {
		t.Fatal("no batches flushed over the binary transport")
	}

	for _, ln := range lanes {
		if len(ln.got) != steps {
			t.Fatalf("%s: lane finished %d/%d steps", ln.scheme, len(ln.got), steps)
		}
		g, err := s.factory.NewGuard(ln.scheme)
		if err != nil {
			t.Fatal(err)
		}
		ref := newSession("ref", ln.scheme, g, time.Now())
		for i, obs := range ln.stream {
			want, err := ref.Step(obs, time.Now())
			if err != nil {
				t.Fatal(err)
			}
			got := ln.got[i]
			if int(got.Action) != want.Action {
				t.Fatalf("%s step %d: action %d != %d", ln.scheme, i, got.Action, want.Action)
			}
			if math.Float64bits(got.Score) != math.Float64bits(want.Decision.Score) {
				t.Fatalf("%s step %d: score %g != %g (not bit-identical)", ln.scheme, i, got.Score, want.Decision.Score)
			}
			if got.Flags&proto.FlagFallback != 0 != want.Decision.UsedDefault ||
				got.Flags&proto.FlagFired != 0 != want.Decision.Fired ||
				got.Flags&proto.FlagDemoted != 0 != want.Demoted ||
				int(got.Step) != want.Decision.Step {
				t.Fatalf("%s step %d: flags/step %+v != %+v", ln.scheme, i, got, want)
			}
		}
	}
}

// TestBinarySessionLifecycle exercises the control frames on one
// multiplexed connection: ping, reset, explicit close (which deletes
// the session server-side but keeps the connection usable), channel
// reuse, and the cid-scoped error cases.
func TestBinarySessionLifecycle(t *testing.T) {
	s, addr := binaryTestServer(t, BatchConfig{})
	defer s.Drain(context.Background(), io.Discard) //nolint:errcheck

	c := dialBinary(t, addr)
	defer c.nc.Close()
	c.ping()

	// Step before open is a recoverable error, not a dead connection.
	obs := obsStream(3, s.factory.ObsDim(), 1)[0]
	if _, err := c.step(0, 0, obs); err == nil {
		t.Fatal("step before open succeeded")
	}

	// The reserved connection-scoped cid cannot carry a session.
	if code, _ := c.openErr(proto.CidConn, SchemeND); code != proto.CodeBadRequest {
		t.Fatalf("reserved cid open: code %d, want 400", code)
	}

	c.open(0, SchemeND)
	if s.Sessions() != 1 {
		t.Fatalf("%d sessions after open, want 1", s.Sessions())
	}

	// A second Open on a live channel is rejected without killing it.
	if code, msg := c.openErr(0, SchemeND); code != proto.CodeBadRequest || !strings.Contains(msg, "already open") {
		t.Fatalf("duplicate cid open: code %d %q", code, msg)
	}

	for i := uint32(1); i <= 2; i++ {
		d, err := c.step(0, i, obs)
		if err != nil {
			t.Fatal(err)
		}
		if d.Step != i-1 {
			t.Fatalf("step counter = %d, want %d", d.Step, i-1)
		}
	}
	c.sessionControl(proto.TypeReset, 0)
	d, err := c.step(0, 3, obs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Step != 0 {
		t.Fatalf("step counter after reset = %d, want 0", d.Step)
	}
	c.sessionControl(proto.TypeClose, 0)
	deadline := time.Now().Add(2 * time.Second)
	for s.Sessions() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Sessions() != 0 {
		t.Fatalf("%d sessions after close, want 0", s.Sessions())
	}
	if s.metrics.SessionsDeleted.Load() != 1 {
		t.Fatalf("deleted counter %d, want 1", s.metrics.SessionsDeleted.Load())
	}

	// Close freed the channel id and kept the connection: reuse both.
	c.open(0, SchemeAEns)
	if d, err := c.step(0, 1, obs); err != nil || d.Step != 0 {
		t.Fatalf("step on reused channel: %+v %v", d, err)
	}
	if s.Sessions() != 1 {
		t.Fatalf("%d sessions after channel reuse, want 1", s.Sessions())
	}
}

// TestBinaryPipelineRejected pins the one-outstanding-step-per-channel
// rule: a second step pipelined on the same cid while the first is
// still in the (deliberately slow) batch window gets a BadRequest, the
// first still completes, and the channel remains usable.
func TestBinaryPipelineRejected(t *testing.T) {
	s, addr := binaryTestServer(t, BatchConfig{Window: 50 * time.Millisecond, MaxBatch: 64, Collectors: 1})
	defer s.Drain(context.Background(), io.Discard) //nolint:errcheck

	c := dialBinary(t, addr)
	defer c.nc.Close()
	c.open(0, SchemeND)
	obs := obsStream(9, s.factory.ObsDim(), 1)[0]

	if err := c.pc.WriteStep(0, 1, obs); err != nil {
		t.Fatal(err)
	}
	if err := c.pc.WriteStep(0, 2, obs); err != nil {
		t.Fatal(err)
	}
	var decisions, rejections int
	for i := 0; i < 2; i++ {
		typ, payload, err := c.pc.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		switch typ {
		case proto.TypeDecision:
			d, err := proto.DecodeDecision(payload)
			if err != nil || d.Seq != 1 {
				t.Fatalf("decision %+v err %v, want seq 1", d, err)
			}
			decisions++
		case proto.TypeError:
			cid, code, msg, err := proto.DecodeError(payload)
			if err != nil || cid != 0 || code != proto.CodeBadRequest || !strings.Contains(msg, "in flight") {
				t.Fatalf("error cid %d code %d %q %v", cid, code, msg, err)
			}
			rejections++
		default:
			t.Fatalf("unexpected frame type %d", typ)
		}
	}
	if decisions != 1 || rejections != 1 {
		t.Fatalf("%d decisions, %d rejections; want 1 and 1", decisions, rejections)
	}
	// The channel survived the rejection.
	if d, err := c.step(0, 2, obs); err != nil || d.Seq != 2 {
		t.Fatalf("step after rejection: %+v %v", d, err)
	}
}

// TestBinaryDrainGoAway checks graceful shutdown over the binary
// transport: an in-flight connection is told to go away (or closed)
// rather than left hanging, and new connections are refused.
func TestBinaryDrainGoAway(t *testing.T) {
	s, addr := binaryTestServer(t, BatchConfig{})
	c := dialBinary(t, addr)
	defer c.nc.Close()
	c.open(0, SchemeAEns)
	obs := obsStream(5, s.factory.ObsDim(), 1)[0]
	if _, err := c.step(0, 0, obs); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx, io.Discard); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The existing connection: a post-drain step gets GoAway or, if the
	// force-close won the race, a transport error. Never a decision.
	if err := c.pc.WriteStep(0, 1, obs); err == nil {
		typ, _, err := c.pc.ReadFrame()
		if err == nil && typ != proto.TypeGoAway {
			t.Fatalf("post-drain step answered with frame type %d", typ)
		}
	}

	// A new connection is refused at the handshake.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return // listener may already reject; also a valid drain outcome
	}
	defer nc.Close()
	pc := proto.NewConn(nc)
	if err := pc.WriteHello(); err != nil {
		return
	}
	if typ, _, err := pc.ReadFrame(); err == nil && typ != proto.TypeGoAway {
		t.Fatalf("post-drain handshake answered with frame type %d, want GoAway", typ)
	}
	if s.Sessions() != 0 {
		t.Fatalf("%d sessions survived drain", s.Sessions())
	}
}
