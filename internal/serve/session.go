package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"osap/internal/core"
	"osap/internal/learn"
	"osap/internal/mdp"
	"osap/internal/rl"
)

// ErrSessionClosed is returned by Session.Step after the session has
// been deleted, evicted or drained.
var ErrSessionClosed = errors.New("serve: session closed")

// Session is one client's live guard: a private core.Guard (and thus
// private inference workspaces and signal state) plus bookkeeping for
// eviction and metrics. Steps on one session are serialized by its
// mutex, matching the guard's single-goroutine contract; different
// sessions are fully independent.
type Session struct {
	id     string
	scheme string

	mu     sync.Mutex
	guard  *core.Guard
	closed bool
	steps  uint64
	fired  bool

	// demoted latches when a step panics or yields a non-finite score:
	// from then on the session serves the safe default policy (the
	// Simplex move, applied to infrastructure faults instead of model
	// uncertainty). The demotion taxonomy (DESIGN.md §13) splits by
	// cause: a fault demotion (recovered panic) is permanent for the
	// session's lifetime — an inference stack that has panicked once is
	// not trusted again — while an uncertainty demotion (non-finite
	// score) is recoverable when probation is configured: the session
	// keeps scoring its guard in shadow and re-admits after readmitL
	// consecutive confident shadow steps, at most readmitCap times.
	demoted bool //osap:guardedby mu
	// demoteKind records the cause; demoteLatch is true when the
	// demotion is permanent (fault, probation disabled, or cap spent).
	demoteKind   demoteKind //osap:guardedby mu
	demoteLatch  bool       //osap:guardedby mu
	demoteReason string     //osap:guardedby mu
	// calm counts consecutive confident shadow steps; readmits the
	// re-admissions granted so far this episode; everDemoted persists
	// across episodes so FirstDemotion fires once per session lifetime.
	calm        int  //osap:guardedby mu
	readmits    int  //osap:guardedby mu
	everDemoted bool //osap:guardedby mu

	// Probation config, written once before the session is published to
	// the table and read-only afterwards. readmitL 0 (or readmitCap 0)
	// disables recovery: every demotion is permanent, the pre-probation
	// behavior.
	readmitL   int
	readmitCap int // 0 = never re-admit, < 0 = unlimited

	// lastUsed is the UnixNano of the latest touch, read lock-free by
	// the eviction sweeper.
	lastUsed atomic.Int64

	// Batch routing, written once before the session is published to
	// the table and read-only afterwards: which collector shard owns
	// this session's steps and how much of a step the batch engine can
	// compute for it (see classifyGuard).
	shard int
	class batchClass

	// Generation binding, also written once pre-publication: the
	// artifact version this session pinned at admission (nil only for
	// sessions built outside a Server, e.g. table tests), plus its
	// drift-sketch routing.
	gen        *Generation
	driftShard uint32
	sigIdx     uint8

	// gate, when online learning is enabled, is the session's private
	// trust gate (DESIGN.md §14): every clean serving step is
	// re-judged against the frozen boot baseline and, if admitted,
	// contributed to the experience window. Written once
	// pre-publication; its mutable state is only touched under mu.
	gate *learn.Gate
}

// newSession wraps a guard. The caller owns ID uniqueness.
func newSession(id, scheme string, g *core.Guard, now time.Time) *Session {
	s := &Session{id: id, scheme: scheme, guard: g}
	s.lastUsed.Store(now.UnixNano())
	return s
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Scheme returns the uncertainty scheme the session was created with.
func (s *Session) Scheme() string { return s.scheme }

// StepResult is the outcome of one served decision.
type StepResult struct {
	// Action is the argmax of the acting policy's distribution — the
	// level the client should fetch next.
	Action int
	// Decision carries the uncertainty score, the learned/default flag
	// and the trigger state. Decision.Probs is cleared (it aliases the
	// session's internal buffers and must not escape the step lock).
	Decision core.Decision
	// FirstFiring is true on the step where this session's trigger
	// first fired (for the trigger-firings counter).
	FirstFiring bool
	// Demoted reports that the session is serving in degraded mode:
	// this decision came from the safe default policy because inference
	// faulted earlier (or on this step).
	Demoted bool
	// FirstDemotion is true on the step of the session's first-ever
	// demotion (for the sessions-demoted counter — incremented exactly
	// once per session).
	FirstDemotion bool
	// PanicRecovered distinguishes a recovered inference panic from a
	// non-finite score on the demoting step.
	PanicRecovered bool
	// Demotion is true on any demoting step, first or repeat;
	// Redemotion marks a demotion of a previously recovered session.
	Demotion   bool
	Redemotion bool
	// Probation is true while the session is demoted but recoverable:
	// the guard keeps scoring in shadow and the session may re-admit.
	Probation bool
	// Recovered is true on the step where probation re-admitted the
	// session; the decision was served live from the guard again.
	Recovered bool
	// Latched is true on the step where the demotion became permanent:
	// a fault demotion, an uncertainty demotion with probation off or
	// the re-admission cap spent, or a shadow-step panic escalating an
	// open probation.
	Latched bool
	// GateChecked is true when the online-learning trust gate judged
	// this step (learning enabled and the step served cleanly —
	// demoted, probation and recovery steps are never gate-checked);
	// GateAdmitted is true when the gate admitted the step's features
	// to the experience window.
	GateChecked  bool
	GateAdmitted bool
}

// demoteKind is the demotion taxonomy (DESIGN.md §13).
type demoteKind uint8

const (
	// demoteFault: the inference stack panicked. Permanent — a stack
	// that has panicked once is not trusted again.
	demoteFault demoteKind = iota
	// demoteScore: the guard produced a non-finite score or
	// distribution. Recoverable under probation.
	demoteScore
)

// Step runs one guarded decision. now stamps the idle clock.
//
// The guard call is panic-contained: a panic anywhere in the inference
// stack, or a non-finite uncertainty score escaping it, permanently
// demotes the session to the safe default policy instead of killing
// the serving goroutine or poisoning downstream JSON. The step that
// hits the fault is still answered — from the safe policy — so no
// client-visible decision is ever dropped.
//
//osap:hotpath
func (s *Session) Step(obs []float64, now time.Time) (StepResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return StepResult{}, ErrSessionClosed
	}
	if s.demoted {
		if !s.demoteLatch {
			d, pv := s.decide(obs) //osap:hotpath-stop decide is panic containment by design; clean path asserted by TestShadowStepZeroAlloc
			return s.shadowFinishLocked(obs, d, pv, now), nil
		}
		res := s.serveSafeLocked(obs)
		s.steps++
		s.lastUsed.Store(now.UnixNano())
		return res, nil
	}
	d, pv := s.decide(obs) //osap:hotpath-stop decide is panic containment by design; clean path asserted by TestSessionStepZeroAlloc
	return s.finishLocked(obs, d, pv, now)
}

// stepBatched is Step with the expensive inference inputs supplied by
// the batch engine (see internal/serve batch.go): the uncertainty
// score comes from the signal's batched entry point and the learned
// distribution from the fused deployed forward. Demotion rules, fault
// containment and bookkeeping are shared with Step via finishLocked,
// so a batched step is observably identical to a sequential one.
//
//osap:hotpath
func (s *Session) stepBatched(obs []float64, ev *batchEval, now time.Time) (StepResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return StepResult{}, ErrSessionClosed
	}
	if s.demoted {
		if !s.demoteLatch {
			// Shadow row: the collector computed this session's GEMM rows
			// in the same fused forward as live sessions; route the result
			// into the probation evaluator instead of the client.
			d, pv := s.decideBatched(obs, ev) //osap:hotpath-stop decideBatched is panic containment by design; clean path asserted by TestShadowStepZeroAlloc
			return s.shadowFinishLocked(obs, d, pv, now), nil
		}
		res := s.serveSafeLocked(obs)
		s.steps++
		s.lastUsed.Store(now.UnixNano())
		return res, nil
	}
	d, pv := s.decideBatched(obs, ev) //osap:hotpath-stop decideBatched is panic containment by design; clean path asserted by TestBatchedStepZeroAlloc
	return s.finishLocked(obs, d, pv, now)
}

// finishLocked is the shared tail of Step/stepBatched: demote on a
// fault, otherwise surface the decision metadata and advance the
// bookkeeping.
//
//osap:hotpath
func (s *Session) finishLocked(obs []float64, d core.Decision, pv any, now time.Time) (StepResult, error) {
	if pv != nil || !finiteDecision(&d) {
		kind := demoteScore
		if pv != nil {
			kind = demoteFault
		}
		//osap:ignore hotpath-alloc demotion slow path, runs at most a few (readmit-cap) times per session
		s.demoteLocked(kind, fmt.Sprintf("step %d: panic=%v score=%g", s.steps, pv, d.Score))
		res := s.serveSafeLocked(obs)
		res.Demotion = true
		res.FirstDemotion = !s.everDemoted
		res.Redemotion = s.everDemoted
		res.PanicRecovered = pv != nil
		res.Latched = s.demoteLatch
		res.Probation = !s.demoteLatch
		s.everDemoted = true
		s.steps++
		s.lastUsed.Store(now.UnixNano())
		return res, nil
	}
	res := StepResult{Action: mdp.ArgmaxAction(d.Probs), Decision: d}
	res.Decision.Probs = nil
	if d.Fired && !s.fired {
		s.fired = true
		res.FirstFiring = true
	}
	if s.gate != nil {
		res.GateChecked = true
		res.GateAdmitted = s.gate.Check(obs) == learn.VerdictAdmit
	}
	s.steps++
	s.lastUsed.Store(now.UnixNano())
	return res, nil
}

// decide runs the guard with panic containment. It is deliberately not
// //osap:hotpath-annotated: the deferred recover is the whole point,
// and the clean path's zero-alloc guarantee is asserted empirically by
// TestSessionStepZeroAlloc instead.
func (s *Session) decide(obs []float64) (d core.Decision, panicked any) {
	defer func() {
		if r := recover(); r != nil {
			panicked = r
		}
	}()
	d = s.guard.Decide(obs)
	return d, nil
}

// batchEval carries the batch-computed inputs for one session's step.
// The slices alias collector-owned scratch and are valid only for the
// duration of the stepBatched call.
type batchEval struct {
	class    batchClass
	deployed []float64   // deployed actor's distribution row
	dists    [][]float64 // U_π member rows (classBatchPolicy)
	vals     []float64   // U_V member values (classBatchValue)
}

// decideBatched mirrors decide for the batched path: score the signal
// from the batch-computed inputs, derive the learned one-hot from the
// fused deployed forward, and advance the guard via DecideWith — all
// under the same panic containment as decide. The type assertions are
// safe by construction: classifyGuard proved them at session creation.
func (s *Session) decideBatched(obs []float64, ev *batchEval) (d core.Decision, panicked any) {
	defer func() {
		if r := recover(); r != nil {
			panicked = r
		}
	}()
	var score float64
	switch ev.class {
	case classBatchPolicy:
		score = s.guard.Signal.(*core.PolicySignal).ObserveDists(ev.dists)
	case classBatchValue:
		score = s.guard.Signal.(*core.ValueSignal).ObserveValues(ev.vals)
	default:
		score = s.guard.Signal.Observe(obs)
	}
	learned := s.guard.Learned.(*rl.GreedyInference).OneHot(ev.deployed)
	d = s.guard.DecideWith(obs, score, learned)
	return d, nil
}

// finiteDecision reports whether the decision is safe to serve: a
// finite score and finite probabilities. Checked before Probs is
// cleared, since a NaN in the distribution makes the argmax arbitrary.
func finiteDecision(d *core.Decision) bool {
	if math.IsNaN(d.Score) || math.IsInf(d.Score, 0) {
		return false
	}
	for _, p := range d.Probs {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return false
		}
	}
	return true
}

// shadowFinishLocked is the tail of a probation step (DESIGN.md §13):
// the guard already scored the real observation in shadow, so its
// signal, trigger and episode bookkeeping advanced exactly as a live
// guard's would — which is what makes a recovered session bit-identical
// to a fresh guard fast-forwarded through the same observations. A
// confident shadow decision (finite, and the trigger not demanding the
// default) advances the hysteresis; anything else restarts it. After
// readmitL consecutive confident steps the session re-admits and serves
// this very decision live. A panic during shadow scoring escalates the
// demotion to a permanent fault latch.
//
//osap:hotpath
func (s *Session) shadowFinishLocked(obs []float64, d core.Decision, pv any, now time.Time) StepResult {
	if pv != nil {
		//osap:ignore hotpath-alloc latch escalation slow path, runs at most once per session
		s.demoteReason = fmt.Sprintf("%s; shadow step %d: panic=%v", s.demoteReason, s.steps, pv)
		s.demoteKind = demoteFault
		s.demoteLatch = true
		res := s.serveSafeLocked(obs)
		res.PanicRecovered = true
		res.Latched = true
		s.steps++
		s.lastUsed.Store(now.UnixNano())
		return res
	}
	confident := finiteDecision(&d) && !d.UsedDefault
	if confident {
		s.calm++
	} else {
		s.calm = 0
	}
	if confident && s.calm >= s.readmitL {
		// Hysteresis satisfied: re-admit and serve the shadow decision.
		s.demoted = false
		s.demoteLatch = false
		s.demoteReason = ""
		s.demoteKind = demoteScore
		s.readmits++
		s.calm = 0
		res := StepResult{Action: mdp.ArgmaxAction(d.Probs), Decision: d, Recovered: true}
		res.Decision.Probs = nil
		s.steps++
		s.lastUsed.Store(now.UnixNano())
		return res
	}
	res := s.serveSafeLocked(obs)
	res.Probation = true
	s.steps++
	s.lastUsed.Store(now.UnixNano())
	return res
}

// demoteLocked latches degraded mode. Setting fired suppresses any
// later FirstFiring: the trigger-firings counter tracks genuine
// uncertainty triggers, not infrastructure faults. The latch is
// permanent (demoteLatch) for fault demotions, when probation is not
// configured, or once the re-admission budget is spent; otherwise the
// session enters probation and may recover.
func (s *Session) demoteLocked(kind demoteKind, reason string) {
	s.demoted = true
	s.demoteKind = kind
	s.demoteReason = reason
	s.fired = true
	s.calm = 0
	s.demoteLatch = kind == demoteFault ||
		s.readmitL <= 0 || s.readmitCap == 0 ||
		(s.readmitCap > 0 && s.readmits >= s.readmitCap)
}

// serveSafeLocked answers one step purely from the safe default
// policy, bypassing the demoted guard entirely. Score stays 0 — never
// the poisoned value — so the response always JSON-encodes.
func (s *Session) serveSafeLocked(obs []float64) StepResult {
	probs := s.guard.Default.Probs(obs) //osap:hotpath-stop the fallback policy (serve defaultPolicy over abr BB) is annotated and alloc-tested
	return StepResult{
		Action: mdp.ArgmaxAction(probs),
		Decision: core.Decision{
			UsedDefault: true,
			Fired:       true,
			Step:        int(s.steps),
		},
		Demoted: true,
	}
}

// Demoted reports whether the session is serving in degraded mode.
func (s *Session) Demoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.demoted
}

// DemotionState reports the session's demotion status in one snapshot:
// whether it is demoted and whether that demotion is still recoverable
// (probation). Used by the server's gauge accounting.
func (s *Session) DemotionState() (demoted, probation bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.demoted, s.demoted && !s.demoteLatch
}

// ResetOutcome reports what a Reset did beyond restarting the episode,
// so the server can keep its demotion gauges honest.
type ResetOutcome struct {
	// ClearedDemotion is true when the reset cleared an uncertainty
	// demotion (the session serves live again).
	ClearedDemotion bool
	// WasProbation is true when the cleared demotion was still
	// recoverable (the session was occupying the probation gauge).
	WasProbation bool
}

// Reset starts a new episode on the session's guard (e.g. the client
// began a new video) without discarding the session.
//
// Demotion contract (DESIGN.md §13): a fault demotion survives reset —
// the panic indicts the session's inference stack, not the episode —
// while an uncertainty demotion (non-finite score), including one whose
// re-admission cap latched it, clears with the new episode: the guard
// state that produced the bad score is discarded wholesale, which is
// strictly stronger evidence than the shadow hysteresis. The
// re-admission budget is per-episode and refills.
func (s *Session) Reset(now time.Time) (ResetOutcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ResetOutcome{}, ErrSessionClosed
	}
	var out ResetOutcome
	if s.demoted && s.demoteKind == demoteScore {
		out.ClearedDemotion = true
		out.WasProbation = !s.demoteLatch
		s.demoted = false
		s.demoteLatch = false
		s.demoteReason = ""
	}
	s.calm = 0
	s.readmits = 0
	s.guard.Reset()
	if s.gate != nil {
		s.gate.Reset()
	}
	s.fired = s.demoted // a surviving fault demotion keeps FirstFiring suppressed
	s.lastUsed.Store(now.UnixNano())
	return out, nil
}

// close marks the session unusable. Idempotent; reports whether this
// call performed the close.
func (s *Session) close() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	was := s.closed
	s.closed = true
	return !was
}

// idleSince reports the last-touch time.
func (s *Session) idleSince() time.Time { return time.Unix(0, s.lastUsed.Load()) }

// Info is a read-only session snapshot for the GET endpoint.
type Info struct {
	ID           string `json:"id"`
	Scheme       string `json:"scheme"`
	Version      string `json:"version,omitempty"`
	Steps        uint64 `json:"steps"`
	Fired        bool   `json:"fired"`
	IdleMsec     int64  `json:"idle_ms"`
	Demoted      bool   `json:"demoted"`
	DemoteReason string `json:"demote_reason,omitempty"`
	// Probation: demoted but recoverable (shadow scoring under way).
	Probation bool `json:"probation,omitempty"`
	// Latched: the demotion is permanent for the session's lifetime.
	Latched bool `json:"latched,omitempty"`
	// Recovered counts probation re-admissions this episode.
	Recovered int `json:"recovered,omitempty"`
}

// Snapshot captures the session's current state.
func (s *Session) Snapshot(now time.Time) Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	idle := now.Sub(time.Unix(0, s.lastUsed.Load()))
	if idle < 0 {
		idle = 0
	}
	version := ""
	if s.gen != nil {
		version = s.gen.Version()
	}
	return Info{
		ID:           s.id,
		Scheme:       s.scheme,
		Version:      version,
		Steps:        s.steps,
		Fired:        s.fired,
		IdleMsec:     idle.Milliseconds(),
		Demoted:      s.demoted,
		DemoteReason: s.demoteReason,
		Probation:    s.demoted && !s.demoteLatch,
		Latched:      s.demoted && s.demoteLatch,
		Recovered:    s.readmits,
	}
}

// String implements fmt.Stringer for logs.
func (s *Session) String() string {
	return fmt.Sprintf("session %s (%s)", s.id, s.scheme)
}
