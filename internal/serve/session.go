package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"osap/internal/core"
	"osap/internal/mdp"
)

// ErrSessionClosed is returned by Session.Step after the session has
// been deleted, evicted or drained.
var ErrSessionClosed = errors.New("serve: session closed")

// Session is one client's live guard: a private core.Guard (and thus
// private inference workspaces and signal state) plus bookkeeping for
// eviction and metrics. Steps on one session are serialized by its
// mutex, matching the guard's single-goroutine contract; different
// sessions are fully independent.
type Session struct {
	id     string
	scheme string

	mu     sync.Mutex
	guard  *core.Guard
	closed bool
	steps  uint64
	fired  bool

	// lastUsed is the UnixNano of the latest touch, read lock-free by
	// the eviction sweeper.
	lastUsed atomic.Int64
}

// newSession wraps a guard. The caller owns ID uniqueness.
func newSession(id, scheme string, g *core.Guard, now time.Time) *Session {
	s := &Session{id: id, scheme: scheme, guard: g}
	s.lastUsed.Store(now.UnixNano())
	return s
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Scheme returns the uncertainty scheme the session was created with.
func (s *Session) Scheme() string { return s.scheme }

// StepResult is the outcome of one served decision.
type StepResult struct {
	// Action is the argmax of the acting policy's distribution — the
	// level the client should fetch next.
	Action int
	// Decision carries the uncertainty score, the learned/default flag
	// and the trigger state. Decision.Probs is cleared (it aliases the
	// session's internal buffers and must not escape the step lock).
	Decision core.Decision
	// FirstFiring is true on the step where this session's trigger
	// first fired (for the trigger-firings counter).
	FirstFiring bool
}

// Step runs one guarded decision. now stamps the idle clock.
//
//osap:hotpath
func (s *Session) Step(obs []float64, now time.Time) (StepResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return StepResult{}, ErrSessionClosed
	}
	d := s.guard.Decide(obs)
	res := StepResult{Action: mdp.ArgmaxAction(d.Probs), Decision: d}
	res.Decision.Probs = nil
	if d.Fired && !s.fired {
		s.fired = true
		res.FirstFiring = true
	}
	s.steps++
	s.lastUsed.Store(now.UnixNano())
	return res, nil
}

// Reset starts a new episode on the session's guard (e.g. the client
// began a new video) without discarding the session.
func (s *Session) Reset(now time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.guard.Reset()
	s.fired = false
	s.lastUsed.Store(now.UnixNano())
	return nil
}

// close marks the session unusable. Idempotent; reports whether this
// call performed the close.
func (s *Session) close() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	was := s.closed
	s.closed = true
	return !was
}

// idleSince reports the last-touch time.
func (s *Session) idleSince() time.Time { return time.Unix(0, s.lastUsed.Load()) }

// Info is a read-only session snapshot for the GET endpoint.
type Info struct {
	ID       string `json:"id"`
	Scheme   string `json:"scheme"`
	Steps    uint64 `json:"steps"`
	Fired    bool   `json:"fired"`
	IdleMsec int64  `json:"idle_ms"`
}

// Snapshot captures the session's current state.
func (s *Session) Snapshot(now time.Time) Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	idle := now.Sub(time.Unix(0, s.lastUsed.Load()))
	if idle < 0 {
		idle = 0
	}
	return Info{
		ID:       s.id,
		Scheme:   s.scheme,
		Steps:    s.steps,
		Fired:    s.fired,
		IdleMsec: idle.Milliseconds(),
	}
}

// String implements fmt.Stringer for logs.
func (s *Session) String() string {
	return fmt.Sprintf("session %s (%s)", s.id, s.scheme)
}
