package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"osap/internal/abr"
	"osap/internal/core"
	"osap/internal/experiments"
)

var (
	testArtsOnce sync.Once
	testArts     *experiments.Artifacts
)

// sharedArtifacts builds one synthetic artifact set per test binary;
// artifacts are read-only so every server can share them.
func sharedArtifacts(t testing.TB) *experiments.Artifacts {
	t.Helper()
	testArtsOnce.Do(func() {
		a, err := SyntheticArtifacts("testdist", 3, 7)
		if err != nil {
			t.Fatalf("synthetic artifacts: %v", err)
		}
		testArts = a
	})
	if testArts == nil {
		t.Fatal("artifact construction failed earlier")
	}
	return testArts
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	f, err := NewGuardFactory(sharedArtifacts(t), GuardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func createSession(t *testing.T, base, scheme string) createResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/sessions", map[string]string{"scheme": scheme})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create (%s): status %d: %s", scheme, resp.StatusCode, body)
	}
	var cr createResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, scheme := range []string{SchemeND, SchemeAEns, SchemeVEns} {
		cr := createSession(t, ts.URL, scheme)
		if cr.ID == "" || cr.ObsDim != abr.ObsDim || cr.NumActions <= 0 {
			t.Fatalf("create response incomplete: %+v", cr)
		}

		obs := make([]float64, cr.ObsDim)
		for step := 0; step < 5; step++ {
			resp, body := postJSON(t, ts.URL+"/v1/sessions/"+cr.ID+"/step", map[string][]float64{"obs": obs})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("step: status %d: %s", resp.StatusCode, body)
			}
			var sr stepResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Step != step {
				t.Errorf("%s step %d: response step = %d", scheme, step, sr.Step)
			}
			if sr.Action < 0 || sr.Action >= cr.NumActions {
				t.Errorf("%s: action %d out of range [0,%d)", scheme, sr.Action, cr.NumActions)
			}
			if sr.Policy != "learned" && sr.Policy != "default" {
				t.Errorf("%s: policy = %q", scheme, sr.Policy)
			}
		}

		// Info reflects the steps.
		resp, body := get(t, ts.URL+"/v1/sessions/"+cr.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("info: status %d", resp.StatusCode)
		}
		var info Info
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Steps != 5 || info.Scheme != scheme {
			t.Errorf("info = %+v, want 5 steps of %s", info, scheme)
		}

		// Reset starts a new episode: next step index is 0 again.
		resp, _ = postJSON(t, ts.URL+"/v1/sessions/"+cr.ID+"/reset", nil)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("reset: status %d", resp.StatusCode)
		}
		_, body = postJSON(t, ts.URL+"/v1/sessions/"+cr.ID+"/step", map[string][]float64{"obs": obs})
		var sr stepResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Step != 0 {
			t.Errorf("step after reset = %d, want 0", sr.Step)
		}

		// Delete, then 404.
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+cr.ID, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete: status %d", dresp.StatusCode)
		}
		resp, _ = postJSON(t, ts.URL+"/v1/sessions/"+cr.ID+"/step", map[string][]float64{"obs": obs})
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("step after delete: status %d, want 404", resp.StatusCode)
		}
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Unknown scheme.
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"scheme": "bogus"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus scheme: status %d, want 400", resp.StatusCode)
	}
	// Wrong observation length.
	cr := createSession(t, ts.URL, SchemeND)
	if resp, body := postJSON(t, ts.URL+"/v1/sessions/"+cr.ID+"/step", map[string][]float64{"obs": {1, 2, 3}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short obs: status %d (%s), want 400", resp.StatusCode, body)
	}
	// Unknown session.
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions/nope/step", map[string][]float64{"obs": make([]float64, abr.ObsDim)}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp.StatusCode)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/sessions/"+cr.ID+"/step", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 2})
	createSession(t, ts.URL, SchemeND)
	cr2 := createSession(t, ts.URL, SchemeND)
	resp, _ := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"scheme": SchemeND})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third create: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}
	if got := s.Metrics().SessionsRejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	// Deleting frees a slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+cr2.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	createSession(t, ts.URL, SchemeND)
}

func TestIdleEviction(t *testing.T) {
	// Inject a controllable clock; drive the sweep directly (the
	// background sweeper is just a ticker around Table.Sweep).
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	s, ts := newTestServer(t, Config{SessionTTL: time.Minute, Now: clock})
	cr := createSession(t, ts.URL, SchemeND)

	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	evicted := s.table.Sweep(clock().Add(-time.Minute))
	if evicted != 1 {
		t.Fatalf("sweep evicted %d, want 1", evicted)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions/"+cr.ID+"/step",
		map[string][]float64{"obs": make([]float64, abr.ObsDim)}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("step after eviction: status %d, want 404", resp.StatusCode)
	}
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cr := createSession(t, ts.URL, SchemeVEns)
	postJSON(t, ts.URL+"/v1/sessions/"+cr.ID+"/step", map[string][]float64{"obs": make([]float64, abr.ObsDim)})

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var hz map[string]any
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || hz["live_sessions"].(float64) != 1 {
		t.Errorf("healthz = %v", hz)
	}

	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"osap_sessions_live 1",
		"osap_sessions_created_total 1",
		"osap_decisions_total 1",
		`osap_request_duration_seconds_bucket{endpoint="step",le="+Inf"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

func TestDrainStopsAdmissionsAndFlushesSnapshot(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cr := createSession(t, ts.URL, SchemeND)
	createSession(t, ts.URL, SchemeAEns)

	var snapshot bytes.Buffer
	if err := s.Drain(t.Context(), &snapshot); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Drain(t.Context(), nil); err == nil {
		t.Error("second drain did not report already-draining")
	}

	// New sessions and steps are refused with 503 + Retry-After.
	resp, _ := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"scheme": SchemeND})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("create during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain 503 carries no Retry-After")
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sessions/"+cr.ID+"/step", map[string][]float64{"obs": make([]float64, abr.ObsDim)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("step during drain: status %d, want 503", resp.StatusCode)
	}

	// Healthz reports draining; sessions were closed and counted.
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", resp.StatusCode)
	}
	if got := s.Metrics().SessionsDrained.Load(); got != 2 {
		t.Errorf("drained counter = %d, want 2", got)
	}
	if s.Sessions() != 0 {
		t.Errorf("sessions after drain = %d, want 0", s.Sessions())
	}
	snap := snapshot.String()
	if !strings.Contains(snap, "osap_sessions_drained_total 2") {
		t.Errorf("snapshot missing drained counter:\n%s", snap)
	}
	if !strings.Contains(snap, "final metrics snapshot") {
		t.Errorf("snapshot missing header:\n%s", snap)
	}
}

// TestConcurrentSessionsRace hammers the server from many goroutines —
// creates, steps, deletes, info, metrics — while the sweeper runs.
// Under -race this is the server's memory-safety proof.
func TestConcurrentSessionsRace(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 64, Shards: 8, SessionTTL: time.Hour, SweepInterval: 5 * time.Millisecond})
	s.StartSweeper()
	obs := make([]float64, abr.ObsDim)
	schemes := []string{SchemeND, SchemeAEns, SchemeVEns}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < 15; i++ {
				data, _ := json.Marshal(map[string]string{"scheme": schemes[(w+i)%len(schemes)]})
				resp, err := client.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(data))
				if err != nil {
					t.Error(err)
					return
				}
				var cr createResponse
				err = json.NewDecoder(resp.Body).Decode(&cr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusCreated {
					continue // table full under churn is fine
				}
				for n := 0; n < 5; n++ {
					sdata, _ := json.Marshal(map[string][]float64{"obs": obs})
					sresp, err := client.Post(ts.URL+"/v1/sessions/"+cr.ID+"/step", "application/json", bytes.NewReader(sdata))
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, sresp.Body)
					sresp.Body.Close()
				}
				if i%2 == 0 {
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+cr.ID, nil)
					dresp, err := client.Do(req)
					if err != nil {
						t.Error(err)
						return
					}
					dresp.Body.Close()
				}
				if i%5 == 0 {
					mresp, err := client.Get(ts.URL + "/metrics")
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, mresp.Body)
					mresp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	dec := s.Metrics().Decisions.Load()
	if dec == 0 {
		t.Fatal("no decisions served under concurrent load")
	}
	if err := s.Drain(t.Context(), io.Discard); err != nil {
		t.Fatalf("drain after churn: %v", err)
	}
}

func TestGuardFactoryValidation(t *testing.T) {
	arts := sharedArtifacts(t)
	if _, err := NewGuardFactory(nil, GuardConfig{}); err == nil {
		t.Error("nil artifacts accepted")
	}
	f, err := NewGuardFactory(arts, GuardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Schemes(); len(got) != 3 {
		t.Errorf("Schemes() = %v, want all three", got)
	}
	if _, err := f.NewGuard("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
	// Mismatched U_S windowing is rejected up front.
	bad := GuardConfig{StateSignal: core.StateSignalConfig{ThroughputWindow: 10, K: 20}}
	if _, err := NewGuardFactory(arts, bad); err == nil {
		t.Error("OC-SVM/window dim mismatch accepted")
	}
}
