package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osap/internal/abr"
	"osap/internal/chaos"
	"osap/internal/core"
)

// faultedSession builds a session whose inference stack is scripted to
// fault at the given step via the chaos signal wrapper — the same seam
// the -chaos harness uses, driven deterministically here.
func faultedSession(t *testing.T, kind chaos.Kind, step int) *Session {
	t.Helper()
	f, err := NewGuardFactory(sharedArtifacts(t), GuardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.NewGuard(SchemeND)
	if err != nil {
		t.Fatal(err)
	}
	g.Signal = chaos.WrapSignal(g.Signal, chaos.SessionPlan{
		Fault: chaos.SessionFault{Kind: kind, Step: step},
	})
	return newSession("faulted", SchemeND, g, time.Now())
}

// TestSessionStepPanicRecovery drives a session across an injected
// inference panic: the panic must not escape Step, the faulting step is
// still answered (from the safe policy), and the session stays demoted
// for the rest of its life.
func TestSessionStepPanicRecovery(t *testing.T) {
	for _, tc := range []struct {
		kind      chaos.Kind
		wantPanic bool
	}{
		{chaos.PanicObserve, true},
		{chaos.NaNScore, false},
		{chaos.InfScore, false},
	} {
		const faultStep = 3
		s := faultedSession(t, tc.kind, faultStep)
		obs := make([]float64, abr.ObsDim)
		for i := 0; i < 2*faultStep; i++ {
			res, err := s.Step(obs, time.Now())
			if err != nil {
				t.Fatalf("%v step %d: %v", tc.kind, i, err)
			}
			if got, want := res.Demoted, i >= faultStep; got != want {
				t.Fatalf("%v step %d: Demoted = %v, want %v", tc.kind, i, got, want)
			}
			if got, want := res.FirstDemotion, i == faultStep; got != want {
				t.Fatalf("%v step %d: FirstDemotion = %v, want %v", tc.kind, i, got, want)
			}
			if res.FirstDemotion && res.PanicRecovered != tc.wantPanic {
				t.Fatalf("%v: PanicRecovered = %v, want %v", tc.kind, res.PanicRecovered, tc.wantPanic)
			}
			if res.Demoted {
				if !res.Decision.UsedDefault {
					t.Fatalf("%v step %d: degraded step served the learned policy", tc.kind, i)
				}
				if math.IsNaN(res.Decision.Score) || math.IsInf(res.Decision.Score, 0) {
					t.Fatalf("%v step %d: degraded step leaked score %v", tc.kind, i, res.Decision.Score)
				}
			}
			// Demotions are infrastructure faults, not uncertainty
			// triggers: the firings counter must never see them.
			if res.FirstFiring {
				t.Fatalf("%v step %d: demotion reported as a trigger firing", tc.kind, i)
			}
		}
		if !s.Demoted() {
			t.Fatalf("%v: session not demoted after fault", tc.kind)
		}
		info := s.Snapshot(time.Now())
		if !info.Demoted || info.DemoteReason == "" {
			t.Fatalf("%v: snapshot missing demotion state: %+v", tc.kind, info)
		}
		if info.Steps != 2*faultStep {
			t.Fatalf("%v: %d steps recorded, want %d (no step may be dropped)", tc.kind, info.Steps, 2*faultStep)
		}
	}
}

// TestDegradedModeHTTP exercises the whole degraded-mode story over the
// wire: a chaos-wrapped session demotes mid-flight, the step response
// carries the demoted flag, /metrics counts the demotion exactly once,
// /healthz flips to "degraded", and deleting the demoted session
// returns the fleet to "ok".
func TestDegradedModeHTTP(t *testing.T) {
	const faultStep = 2
	srv, ts := newTestServer(t, Config{
		// Fault only the first session created; the second stays clean.
		WrapGuard: func(idx uint64, g *core.Guard) {
			if idx == 0 {
				g.Signal = chaos.WrapSignal(g.Signal, chaos.SessionPlan{
					Fault: chaos.SessionFault{Kind: chaos.NaNScore, Step: faultStep},
				})
			}
		},
	})
	bad := createSession(t, ts.URL, SchemeND)
	good := createSession(t, ts.URL, SchemeND)

	obs := make([]float64, abr.ObsDim)
	const steps = 5
	for i := 0; i < steps; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/sessions/"+bad.ID+"/step", map[string][]float64{"obs": obs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d: status %d: %s", i, resp.StatusCode, body)
		}
		var sr stepResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("step %d: %v (body %s)", i, err, body)
		}
		if got, want := sr.Demoted, i >= faultStep; got != want {
			t.Fatalf("step %d: demoted = %v, want %v", i, got, want)
		}
		if sr.Demoted && (!sr.Fallback || sr.Policy != "default") {
			t.Fatalf("step %d: degraded response not on the default policy: %+v", i, sr)
		}
	}
	// The clean session is untouched.
	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+good.ID+"/step", map[string][]float64{"obs": obs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean step: status %d", resp.StatusCode)
	}
	var sr stepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Demoted {
		t.Fatal("clean session reported demoted")
	}

	m := srv.Metrics()
	if got := m.SessionsDemoted.Load(); got != 1 {
		t.Fatalf("SessionsDemoted = %d, want 1 (counted exactly once)", got)
	}
	if got := m.NonFiniteScores.Load(); got != 1 {
		t.Fatalf("NonFiniteScores = %d, want 1", got)
	}
	if got := m.PanicsRecovered.Load(); got != 0 {
		t.Fatalf("PanicsRecovered = %d, want 0", got)
	}
	if got, want := m.DegradedSteps.Load(), uint64(steps-faultStep); got != want {
		t.Fatalf("DegradedSteps = %d, want %d", got, want)
	}
	if got := srv.DemotedLive(); got != 1 {
		t.Fatalf("DemotedLive = %d, want 1", got)
	}

	// /healthz reports the impairment; the fleet is degraded, not down.
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var hz struct {
		Status      string `json:"status"`
		DemotedLive int64  `json:"demoted_live"`
		Demotions   uint64 `json:"demotions_total"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" || hz.DemotedLive != 1 || hz.Demotions != 1 {
		t.Fatalf("healthz = %+v, want degraded/1/1", hz)
	}

	// /metrics carries the new series.
	_, body = get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"osap_sessions_demoted_total 1\n",
		"osap_sessions_demoted_live 1\n",
		"osap_step_nonfinite_total 1\n",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	// Deleting the demoted session drops the live gauge and health
	// returns to ok; the cumulative counter keeps its history.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+bad.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if got := srv.DemotedLive(); got != 0 {
		t.Fatalf("DemotedLive = %d after delete, want 0", got)
	}
	resp, body = get(t, ts.URL+"/healthz")
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.DemotedLive != 0 || hz.Demotions != 1 {
		t.Fatalf("healthz after delete = %+v, want ok/0/1", hz)
	}
	_ = resp
}

// TestSessionStepZeroAlloc pins the un-faulted Step path at zero
// allocations — the empirical guarantee the panic-containment wrapper
// (Session.decide) promises in place of an //osap:hotpath annotation.
func TestSessionStepZeroAlloc(t *testing.T) {
	f, err := NewGuardFactory(sharedArtifacts(t), GuardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{SchemeND, SchemeAEns, SchemeVEns} {
		g, err := f.NewGuard(scheme)
		if err != nil {
			t.Fatal(err)
		}
		s := newSession("alloc", scheme, g, time.Now())
		obs := make([]float64, abr.ObsDim)
		now := time.Now()
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := s.Step(obs, now); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: Session.Step allocates %.1f/op on the clean path, want 0", scheme, allocs)
		}
	}
}

// TestTableChurnRacingSweeper races session creation, stepping and
// deletion against an aggressive TTL sweeper (cutoff barely in the
// past, so idle sessions are genuinely evicted mid-churn) and checks
// the close accounting: every admitted session is closed exactly once,
// whether it left by delete, sweep or the final clear.
func TestTableChurnRacingSweeper(t *testing.T) {
	f, err := NewGuardFactory(sharedArtifacts(t), GuardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTable(8, 0)
	var created, closed atomic.Int64
	tb.SetOnClose(func(*Session) { closed.Add(1) })

	stop := make(chan struct{})
	var sweeps sync.WaitGroup
	sweeps.Add(1)
	go func() {
		defer sweeps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				// Evict anything idle for even a millisecond.
				tb.Sweep(time.Now().Add(-time.Millisecond))
			}
		}
	}()

	var wg sync.WaitGroup
	const workers, perWorker = 8, 40
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obs := make([]float64, abr.ObsDim)
			for i := 0; i < perWorker; i++ {
				g, err := f.NewGuard(SchemeND)
				if err != nil {
					t.Error(err)
					return
				}
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := tb.Put(newSession(id, SchemeND, g, time.Now())); err != nil {
					t.Errorf("put %s: %v", id, err)
					return
				}
				created.Add(1)
				for k := 0; k < 3; k++ {
					sess, ok := tb.Get(id)
					if !ok {
						break // swept between steps — legitimate churn
					}
					if _, err := sess.Step(obs, time.Now()); err != nil && err != ErrSessionClosed {
						t.Errorf("step %s: %v", id, err)
						return
					}
				}
				if i%3 == 0 {
					tb.Delete(id)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	sweeps.Wait()

	n := 0
	tb.Range(func(*Session) { n++ })
	if n != tb.Len() {
		t.Fatalf("Range saw %d sessions, Len reports %d", n, tb.Len())
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after Clear, want 0", tb.Len())
	}
	if created.Load() != closed.Load() {
		t.Fatalf("created %d sessions but closed %d — a session leaked or double-closed",
			created.Load(), closed.Load())
	}
}
