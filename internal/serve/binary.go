package serve

import (
	"errors"
	"net"
	"sync/atomic"
	"time"

	"osap/internal/serve/proto"
)

// Binary front end: persistent multiplexed connections speaking
// internal/serve/proto. Each connection is split into three kinds of
// goroutines so that many sessions share each syscall:
//
//   - a reader (serveConn) that decodes frames and routes them to
//     per-session workers;
//   - one worker per open session, which runs the step through the
//     shared opGate/batcher discipline exactly like an HTTP handler
//     goroutine would;
//   - a writer that encodes queued replies and flushes only when its
//     queue goes momentarily idle, coalescing the decisions of every
//     session that stepped in the same window into one write.
//
// The reader hands a worker at most one command at a time (a per
// session busy flag), so a session's observation decode buffer is
// never written while its worker reads it; a client that pipelines two
// steps on one cid gets a BadRequest error for the second.

// ServeBinary accepts persistent binary-protocol connections (see
// internal/serve/proto) on ln and serves them until the listener
// closes. It is the hot-path alternative to the HTTP front door: many
// sessions multiplexed per connection, length-prefixed binary frames,
// zero steady-state allocation per step. Both front ends share the
// same session table, batcher, metrics, and drain discipline, so they
// can run side by side in one process.
//
// Accept errors after drain has begun are a normal shutdown and return
// nil; the caller closes ln (typically right after Drain).
func (s *Server) ServeBinary(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		go s.serveConn(nc)
	}
}

// trackConn registers a live binary connection for drain shutdown. It
// refuses (returns false) once drain has begun, which closes the
// window where a connection could be accepted after Drain's sweep and
// then block forever in a frame read.
func (s *Server) trackConn(nc net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.conns[nc] = struct{}{}
	return true
}

func (s *Server) untrackConn(nc net.Conn) {
	s.connMu.Lock()
	delete(s.conns, nc)
	s.connMu.Unlock()
}

// closeConns shuts down every tracked binary connection's read side.
// Called by Drain after the in-flight barrier: readers blocked in a
// frame read would otherwise wait forever for clients that have
// nothing more to say. Closing only the read half lets each
// connection's writer flush decisions that were completed by the final
// batch flush before the connection tears down; the teardown path then
// closes the socket fully.
func (s *Server) closeConns() {
	s.connMu.Lock()
	for nc := range s.conns {
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.CloseRead() //nolint:errcheck // unblocking reads; peer may be gone
		} else {
			nc.Close() //nolint:errcheck
		}
	}
	s.connMu.Unlock()
}

// binCmd is one routed command for a session worker.
type binCmd struct {
	typ proto.Type // TypeStep or TypeReset
	seq uint32
}

// binMsg is one queued reply for the connection writer.
type binMsg struct {
	typ  proto.Type // Decision, Opened, Error, OK, Pong, GoAway
	dec  proto.Decision
	cid  uint32
	code uint16
	str  string
}

// binSession is one multiplexed session's server-side channel state.
// The reader owns the map entry and the decode buffer hand-off; the
// worker owns the step itself.
type binSession struct {
	cid  uint32
	sess *Session
	obs  []float64 // decode buffer; reader writes only while busy is clear
	in   chan binCmd
	// busy is set by the reader before it decodes into obs and cleared
	// by the worker once the command is fully served — the
	// one-outstanding-step-per-channel discipline, as a single atomic
	// instead of a token channel round trip per step.
	busy atomic.Bool
}

// serveConn is the per-connection reader: Hello/Welcome handshake,
// then a frame-routing loop. Sessions outlive a disconnect (TTL
// eviction collects them later, mirroring an abandoned HTTP session)
// unless the client closes them explicitly.
func (s *Server) serveConn(nc net.Conn) {
	pc := proto.NewConn(nc)
	if !s.trackConn(nc) {
		pc.WriteGoAway("draining") //nolint:errcheck // best-effort farewell
		nc.Close()                 //nolint:errcheck
		return
	}
	defer s.untrackConn(nc)

	t, payload, err := pc.ReadFrame()
	if err != nil || t != proto.TypeHello {
		nc.Close() //nolint:errcheck
		return
	}
	if err := proto.DecodeHello(payload); err != nil {
		pc.WriteError(proto.CidConn, proto.CodeBadRequest, err.Error()) //nolint:errcheck
		nc.Close()                                                      //nolint:errcheck
		return
	}
	if pc.WriteWelcome(proto.Welcome{
		Version:    proto.Version,
		ObsDim:     s.factory.ObsDim(),
		NumActions: s.factory.NumActions(),
		Dataset:    s.factory.Dataset(),
		Schemes:    s.factory.Schemes(),
	}) != nil {
		nc.Close() //nolint:errcheck
		return
	}

	// Post-handshake the write side belongs to the writer goroutine;
	// the reader communicates only through out.
	pc.ManualFlush()
	out := make(chan binMsg, 256)
	writerDone := make(chan struct{})
	go binWriter(nc, pc, out, writerDone)

	sessions := make(map[uint32]*binSession)
	workers := 0
	workerDone := make(chan struct{}, 16)
	defer func() {
		for _, bs := range sessions {
			close(bs.in)
		}
		for ; workers > 0; workers-- {
			<-workerDone
		}
		close(out)
		<-writerDone
		nc.Close() //nolint:errcheck
	}()

	for {
		t, payload, err := pc.ReadFrame()
		if err != nil {
			return
		}
		if s.cfg.FrameFault != nil {
			if reject, delay := s.cfg.FrameFault(); reject {
				// Injected overload: a retryable 503, deliberately without
				// "draining" in the message (see chaos), addressed to the
				// frame's session so only that step retries.
				cid, ok := proto.StepCid(payload)
				if !ok {
					cid = proto.CidConn
				}
				out <- binMsg{typ: proto.TypeError, cid: cid, code: proto.CodeDraining, str: "injected overload"}
				continue
			} else if delay > 0 {
				time.Sleep(delay)
			}
		}
		switch t {
		case proto.TypeStep:
			s.routeStep(sessions, out, payload)
		case proto.TypePing:
			out <- binMsg{typ: proto.TypePong}
		case proto.TypeOpen:
			if bs, reply, keep := s.binaryOpen(sessions, payload); keep {
				if bs != nil {
					sessions[bs.cid] = bs
					workers++
					go s.binWorker(bs, out, workerDone)
				}
				out <- reply
			} else {
				out <- reply
				return
			}
		case proto.TypeReset:
			s.routeReset(sessions, out, payload)
		case proto.TypeClose:
			cid, err := proto.DecodeCid(payload)
			if err != nil {
				out <- binMsg{typ: proto.TypeError, cid: proto.CidConn, code: proto.CodeBadRequest, str: "bad close frame"}
				continue
			}
			bs := sessions[cid]
			if bs == nil {
				out <- binMsg{typ: proto.TypeError, cid: cid, code: proto.CodeBadRequest, str: "no session on this channel"}
				continue
			}
			if _, ok := s.table.Delete(bs.sess.ID()); ok {
				s.metrics.SessionsDeleted.Add(1)
			}
			close(bs.in)
			delete(sessions, cid)
			workers--
			<-workerDone
			out <- binMsg{typ: proto.TypeOK, cid: cid}
		default:
			out <- binMsg{typ: proto.TypeError, cid: proto.CidConn, code: proto.CodeBadRequest, str: "unexpected frame type"}
			return
		}
	}
}

// routeStep decodes a step frame into the session's buffer and hands
// it to the worker. The busy flag guarantees the worker is not still
// reading the buffer from the previous step.
//
//osap:hotpath
func (s *Server) routeStep(sessions map[uint32]*binSession, out chan binMsg, payload []byte) {
	cid, ok := proto.StepCid(payload)
	if !ok {
		out <- binMsg{typ: proto.TypeError, cid: proto.CidConn, code: proto.CodeBadRequest, str: "bad step frame"}
		return
	}
	bs := sessions[cid]
	if bs == nil {
		out <- binMsg{typ: proto.TypeError, cid: cid, code: proto.CodeBadRequest, str: "no session on this channel"}
		return
	}
	if !bs.busy.CompareAndSwap(false, true) {
		out <- binMsg{typ: proto.TypeError, cid: cid, code: proto.CodeBadRequest, str: "step already in flight"}
		return
	}
	_, seq, err := proto.DecodeStep(payload, bs.obs)
	if err != nil {
		bs.busy.Store(false)
		out <- binMsg{typ: proto.TypeError, cid: cid, code: proto.CodeBadRequest, str: "bad step frame"}
		return
	}
	bs.in <- binCmd{typ: proto.TypeStep, seq: seq}
}

// routeReset hands a reset to the session's worker under the same busy
// discipline as a step.
func (s *Server) routeReset(sessions map[uint32]*binSession, out chan binMsg, payload []byte) {
	cid, err := proto.DecodeCid(payload)
	if err != nil {
		out <- binMsg{typ: proto.TypeError, cid: proto.CidConn, code: proto.CodeBadRequest, str: "bad reset frame"}
		return
	}
	bs := sessions[cid]
	if bs == nil {
		out <- binMsg{typ: proto.TypeError, cid: cid, code: proto.CodeBadRequest, str: "no session on this channel"}
		return
	}
	if !bs.busy.CompareAndSwap(false, true) {
		out <- binMsg{typ: proto.TypeError, cid: cid, code: proto.CodeBadRequest, str: "step already in flight"}
		return
	}
	bs.in <- binCmd{typ: proto.TypeReset}
}

// binaryOpen serves one TypeOpen frame: the binary analogue of
// handleCreate. keep=false ends the connection (drain).
func (s *Server) binaryOpen(sessions map[uint32]*binSession, payload []byte) (*binSession, binMsg, bool) {
	s.opGate.RLock()
	if s.draining.Load() {
		s.opGate.RUnlock()
		s.metrics.DrainRejected.Add(1)
		return nil, binMsg{typ: proto.TypeGoAway, str: "draining"}, false
	}
	cid, scheme, err := proto.DecodeOpen(payload)
	if err != nil {
		s.opGate.RUnlock()
		return nil, binMsg{typ: proto.TypeError, cid: proto.CidConn, code: proto.CodeBadRequest, str: "bad open frame"}, true
	}
	if cid == proto.CidConn {
		s.opGate.RUnlock()
		return nil, binMsg{typ: proto.TypeError, cid: cid, code: proto.CodeBadRequest, str: "reserved channel id"}, true
	}
	if sessions[cid] != nil {
		s.opGate.RUnlock()
		return nil, binMsg{typ: proto.TypeError, cid: cid, code: proto.CodeBadRequest, str: "channel id already open"}, true
	}
	if scheme == "" {
		scheme = SchemeND
	}
	ns, err := s.createSession(scheme)
	s.opGate.RUnlock()
	if err != nil {
		if errors.Is(err, ErrTableFull) {
			s.metrics.SessionsRejected.Add(1)
			return nil, binMsg{typ: proto.TypeError, cid: cid, code: proto.CodeTooMany, str: "session table full"}, true
		}
		return nil, binMsg{typ: proto.TypeError, cid: cid, code: proto.CodeBadRequest, str: err.Error()}, true
	}
	bs := &binSession{
		cid:  cid,
		sess: ns,
		obs:  make([]float64, s.factory.ObsDim()),
		in:   make(chan binCmd, 1),
	}
	return bs, binMsg{typ: proto.TypeOpened, cid: cid, str: ns.ID()}, true
}

// binWorker serves one multiplexed session's commands: the binary
// analogue of an HTTP handler goroutine, under the same
// opGate/draining discipline. It exits when the reader closes its
// command channel (session closed or connection gone).
//
//osap:hotpath
func (s *Server) binWorker(bs *binSession, out chan binMsg, done chan struct{}) {
	hist := s.metrics.Latency("step") //osap:hotpath-stop per-worker setup: the endpoint histogram is resolved once, before the command loop
	for cmd := range bs.in {
		// In every arm below, busy is cleared BEFORE the reply is
		// queued: the client only learns the step finished through the
		// reply, so the store→send→flush chain guarantees the flag is
		// clear by the time its next step frame can reach the reader. A
		// clear after the send would race a fast client into a spurious
		// "step already in flight" rejection.
		if cmd.typ == proto.TypeReset {
			s.opGate.RLock()
			rout, err := bs.sess.Reset(s.cfg.Now()) //osap:hotpath-stop Reset is per-episode, not per-step; the clock seam is injected for tests
			if err == nil {
				s.noteResetOutcome(rout)
			}
			s.opGate.RUnlock()
			bs.busy.Store(false)
			if err != nil {
				out <- binMsg{typ: proto.TypeError, cid: bs.cid, code: proto.CodeGone, str: "session closed"}
			} else {
				out <- binMsg{typ: proto.TypeOK, cid: bs.cid}
			}
			continue
		}
		start := time.Now()
		s.opGate.RLock()
		if s.draining.Load() {
			s.opGate.RUnlock()
			s.metrics.DrainRejected.Add(1)
			bs.busy.Store(false)
			out <- binMsg{typ: proto.TypeGoAway, str: "draining"}
			continue
		}
		res, err := s.stepSession(bs.sess, bs.obs)
		if err != nil {
			s.opGate.RUnlock()
			bs.busy.Store(false)
			out <- binMsg{typ: proto.TypeError, cid: bs.cid, code: proto.CodeGone, str: "session closed"}
			continue
		}
		s.recordStep(bs.sess, res)
		s.opGate.RUnlock()

		var m binMsg
		m.typ = proto.TypeDecision
		m.dec.Cid = bs.cid
		m.dec.Seq = cmd.seq
		m.dec.Action = uint16(res.Action)
		if res.Decision.UsedDefault {
			m.dec.Flags |= proto.FlagFallback
		}
		if res.Decision.Fired {
			m.dec.Flags |= proto.FlagFired
		}
		if res.Demoted {
			m.dec.Flags |= proto.FlagDemoted
		}
		m.dec.Step = uint32(res.Decision.Step)
		m.dec.Score = res.Decision.Score
		hist.Observe(time.Since(start).Seconds())
		bs.busy.Store(false)
		out <- m
	}
	done <- struct{}{}
}

// binWriter encodes queued replies and flushes whenever the queue goes
// momentarily idle: decisions completed by one batch flush (or several)
// leave in a single write syscall. On a write error it closes the
// socket — which unblocks the reader — and keeps draining the queue so
// workers never block on a dead connection.
//
//osap:hotpath
func binWriter(nc net.Conn, pc *proto.Conn, out chan binMsg, done chan struct{}) {
	failed := false
	open := true
	for open {
		m, ok := <-out
		if !ok {
			break
		}
		failed = writeBinMsg(nc, pc, m, failed)
		for more := true; more; {
			select {
			case m, ok := <-out:
				if !ok {
					open = false
					more = false
					break
				}
				failed = writeBinMsg(nc, pc, m, failed)
			default:
				more = false
			}
		}
		if !failed && pc.Flush() != nil {
			failed = true
			//osap:hotpath-stop write-failure teardown closes the socket once, then the queue drains
			nc.Close() //nolint:errcheck
		}
	}
	if !failed {
		pc.Flush() //nolint:errcheck // final frames; socket may be gone
	}
	close(done)
}

// writeBinMsg encodes one queued reply; once a write fails the
// connection is closed and the rest of the queue is discarded.
//
//osap:hotpath
func writeBinMsg(nc net.Conn, pc *proto.Conn, m binMsg, failed bool) bool {
	if failed {
		return true
	}
	var err error
	switch m.typ {
	case proto.TypeDecision:
		err = pc.WriteDecision(m.dec)
	case proto.TypeOpened:
		err = pc.WriteOpened(m.cid, m.str) //osap:hotpath-stop Opened is a per-session control frame, not per-step traffic
	case proto.TypeError:
		err = pc.WriteError(m.cid, m.code, m.str) //osap:hotpath-stop Error frames are failure paths, not per-step traffic
	case proto.TypeOK:
		err = pc.WriteSessionControl(proto.TypeOK, m.cid) //osap:hotpath-stop OK is a per-reset control frame
	case proto.TypePong:
		err = pc.WriteControl(proto.TypePong, nil) //osap:hotpath-stop Pong is a keepalive control frame
	case proto.TypeGoAway:
		err = pc.WriteGoAway(m.str) //osap:hotpath-stop GoAway is a per-connection shutdown frame
	}
	if err != nil {
		//osap:hotpath-stop write-failure teardown closes the socket once
		nc.Close() //nolint:errcheck
		return true
	}
	return false
}
