// Package serve hosts OSAP guards behind an HTTP front door: the online
// safety decision of the paper (§2.5, §3.1) as a long-running,
// multi-tenant service rather than an offline experiment loop.
//
// One process loads a training run's artifacts (agent ensemble, value
// ensemble, OC-SVM) once and shares them read-only across thousands of
// concurrent sessions. Each session owns a private core.Guard wired to
// workspace-backed inference sessions (internal/rl), so the per-step
// hot path stays allocation-free and single-goroutine per session while
// the server as a whole scales across cores.
//
// Scaling machinery: a sharded session table (power-of-two shards,
// per-shard RWMutex, FNV-1a hashed IDs) avoids a global lock; a
// background sweeper evicts idle sessions after a TTL; admission
// control caps live sessions (429 + Retry-After past the cap); and
// graceful drain stops admissions, waits for in-flight steps, and
// flushes a final metrics snapshot. Everything is stdlib-only.
package serve

import (
	"fmt"

	"osap/internal/abr"
	"osap/internal/core"
	"osap/internal/experiments"
	"osap/internal/rl"
)

// Scheme names accepted at session creation, matching the paper's
// figures (and internal/experiments).
const (
	SchemeND   = experiments.SchemeND   // U_S: OC-SVM state novelty
	SchemeAEns = experiments.SchemeAEns // U_π: agent-ensemble disagreement
	SchemeVEns = experiments.SchemeVEns // U_V: value-ensemble disagreement
)

// GuardConfig carries the per-deployment knobs a GuardFactory needs
// beyond the trained artifacts themselves.
type GuardConfig struct {
	// StateSignal windows the U_S features; zero value is replaced by
	// core.DefaultStateSignalConfig().
	StateSignal core.StateSignalConfig
	// TriggerL is the consecutive-steps requirement (0 → paper's 3).
	TriggerL int
	// Trim is the ensemble trimming rule; zero value is replaced by
	// core.DefaultEnsembleConfig().
	Trim core.EnsembleConfig
	// ReadmitL and ReadmitCap configure trigger probation (DESIGN.md
	// §13): after firing, the guard re-admits the learned policy once
	// the signal has been confident for ReadmitL consecutive steps, at
	// most ReadmitCap times per episode. The zero values keep the
	// paper's permanent latch.
	ReadmitL   int
	ReadmitCap int
}

func (c GuardConfig) withDefaults() GuardConfig {
	if c.StateSignal == (core.StateSignalConfig{}) {
		c.StateSignal = core.DefaultStateSignalConfig()
	}
	if c.TriggerL == 0 {
		c.TriggerL = 3
	}
	if c.Trim == (core.EnsembleConfig{}) {
		c.Trim = core.DefaultEnsembleConfig()
	}
	return c
}

// GuardFactory builds per-session guards from one shared, read-only set
// of trained artifacts. The artifacts (networks, OC-SVM support
// vectors, calibrated thresholds) are never mutated after construction;
// every NewGuard call creates private inference workspaces and signal
// state, so each returned guard is single-goroutine as usual but any
// number of guards can run concurrently.
type GuardFactory struct {
	arts *experiments.Artifacts
	cfg  GuardConfig
}

// NewGuardFactory validates the artifacts against the config. The
// OC-SVM dimension must match the U_S windowing, exactly as in
// training.
func NewGuardFactory(arts *experiments.Artifacts, cfg GuardConfig) (*GuardFactory, error) {
	if arts == nil || len(arts.Agents) == 0 {
		return nil, fmt.Errorf("serve: artifacts with at least one agent are required")
	}
	cfg = cfg.withDefaults()
	if err := cfg.StateSignal.Validate(); err != nil {
		return nil, err
	}
	if arts.OCSVM != nil && arts.OCSVM.Dim != cfg.StateSignal.FeatureDim() {
		return nil, fmt.Errorf("serve: OC-SVM dim %d != U_S feature dim %d",
			arts.OCSVM.Dim, cfg.StateSignal.FeatureDim())
	}
	return &GuardFactory{arts: arts, cfg: cfg}, nil
}

// ObsDim returns the observation length the deployed agent expects.
func (f *GuardFactory) ObsDim() int { return f.arts.Agents[0].Actor.InDim() }

// NumActions returns the action-space size of the deployed agent.
func (f *GuardFactory) NumActions() int { return f.arts.Agents[0].Actor.OutDim() }

// Dataset names the training distribution behind the artifacts.
func (f *GuardFactory) Dataset() string { return f.arts.Dataset }

// Artifacts exposes the factory's (read-only) artifact set — the
// frozen baseline an online learner judges against.
func (f *GuardFactory) Artifacts() *experiments.Artifacts { return f.arts }

// Schemes lists the guard schemes this factory can build, given which
// artifacts are present.
func (f *GuardFactory) Schemes() []string {
	var out []string
	if f.arts.OCSVM != nil {
		out = append(out, SchemeND)
	}
	if len(f.arts.Agents) >= 2 {
		out = append(out, SchemeAEns)
	}
	if len(f.arts.ValueNets) >= 2 {
		out = append(out, SchemeVEns)
	}
	return out
}

// defaultPolicy adapts the safe BB policy for serving: abr.BBPolicy
// emits a fresh one-hot per call (fine in experiment loops), but a
// served session's defaulted steps are hot-path too, so the one-hot is
// written into a session-owned buffer instead. Single-goroutine, like
// every per-session component.
type defaultPolicy struct {
	bb     *abr.BBPolicy
	onehot []float64
}

// Probs implements mdp.Policy without heap allocation; the result is
// valid until the next call.
//
//osap:hotpath
func (p *defaultPolicy) Probs(obs []float64) []float64 {
	for i := range p.onehot {
		p.onehot[i] = 0
	}
	p.onehot[p.bb.Level(abr.BufferSecFromObs(obs))] = 1
	return p.onehot
}

// NewGuard assembles a fresh guard for one session: the deployed agent
// served greedily through a private workspace, the buffer-based policy
// as the safe default, and the scheme's signal + trigger using the
// calibrated thresholds stored in the artifacts. The returned guard is
// single-goroutine; never share it across sessions.
func (f *GuardFactory) NewGuard(scheme string) (*core.Guard, error) {
	learned := rl.NewGreedyInference(f.arts.Agents[0])
	def := &defaultPolicy{bb: abr.NewBBPolicy(f.NumActions()), onehot: make([]float64, f.NumActions())}

	var sig core.Signal
	var trig *core.Trigger
	switch scheme {
	case SchemeND:
		if f.arts.OCSVM == nil {
			return nil, fmt.Errorf("serve: artifacts carry no OC-SVM model for %s", SchemeND)
		}
		s, err := core.NewStateSignal(f.arts.OCSVM, abr.LastThroughputMbps, f.cfg.StateSignal)
		if err != nil {
			return nil, err
		}
		sig = s
		tc := core.StateTriggerConfig()
		tc.L = f.cfg.TriggerL
		tc.ReadmitL = f.cfg.ReadmitL
		tc.ReadmitCap = f.cfg.ReadmitCap
		trig = core.NewTrigger(tc)
	case SchemeAEns:
		if len(f.arts.Agents) < 2 {
			return nil, fmt.Errorf("serve: %s needs an agent ensemble (have %d)", SchemeAEns, len(f.arts.Agents))
		}
		s, err := core.NewPolicySignal(rl.InferencePolicyEnsemble(f.arts.Agents), f.cfg.Trim)
		if err != nil {
			return nil, err
		}
		sig = s
		tc := core.VarianceTriggerConfig(f.arts.AlphaPi, f.cfg.TriggerL)
		tc.ReadmitL = f.cfg.ReadmitL
		tc.ReadmitCap = f.cfg.ReadmitCap
		trig = core.NewTrigger(tc)
	case SchemeVEns:
		if len(f.arts.ValueNets) < 2 {
			return nil, fmt.Errorf("serve: %s needs a value ensemble (have %d)", SchemeVEns, len(f.arts.ValueNets))
		}
		s, err := core.NewValueSignal(rl.InferenceValueEnsemble(f.arts.ValueNets), f.cfg.Trim)
		if err != nil {
			return nil, err
		}
		sig = s
		tc := core.VarianceTriggerConfig(f.arts.AlphaV, f.cfg.TriggerL)
		tc.ReadmitL = f.cfg.ReadmitL
		tc.ReadmitCap = f.cfg.ReadmitCap
		trig = core.NewTrigger(tc)
	default:
		return nil, fmt.Errorf("serve: unknown scheme %q (want one of %v)", scheme, f.Schemes())
	}
	return core.NewGuard(learned, def, sig, trig)
}
