package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// latencyBuckets are the fixed histogram bounds in seconds (upper
// inclusive, Prometheus convention), spanning 10 µs to 1 s — the
// plausible range for an in-process guard decision plus JSON framing.
var latencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1,
}

// batchSizeBuckets bound the batch-size histogram: powers of two up to
// the largest plausible MaxBatch.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Histogram is a lock-free fixed-bucket histogram in the Prometheus
// cumulative style: counts[i] observations ≤ bounds[i], with a
// trailing +Inf bucket, plus a running sum of observed values.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // math.Float64bits of the running sum
	total  atomic.Uint64
}

// NewHistogram returns an empty latency histogram over the standard
// request-latency buckets.
func NewHistogram() *Histogram { return NewHistogramBuckets(latencyBuckets) }

// NewHistogramBuckets returns an empty histogram over custom ascending
// upper bounds.
func NewHistogramBuckets(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value (seconds for latency histograms).
//
//osap:hotpath
func (h *Histogram) Observe(sec float64) {
	i := sort.SearchFloat64s(h.bounds, sec)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + sec)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed seconds.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates a quantile (0..1) by linear interpolation within
// the containing bucket — the same estimate Prometheus' histogram_quantile
// computes server-side. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := 2 * lo // +Inf bucket: extrapolate one doubling
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Metrics aggregates the server's counters and per-endpoint latency
// histograms. All fields are updated atomically; WriteProm renders the
// Prometheus text exposition format (version 0.0.4).
type Metrics struct {
	SessionsCreated  atomic.Uint64
	SessionsRejected atomic.Uint64 // admission-control 429s
	SessionsEvicted  atomic.Uint64 // TTL sweeper
	SessionsDeleted  atomic.Uint64 // explicit client DELETEs
	SessionsDrained  atomic.Uint64 // closed by graceful shutdown
	Decisions        atomic.Uint64 // steps served
	Fallbacks        atomic.Uint64 // steps acted by the default policy
	TriggerFirings   atomic.Uint64 // sessions whose trigger first fired
	DrainRejected    atomic.Uint64 // requests refused while draining
	SessionsDemoted  atomic.Uint64 // sessions first demoted to degraded mode
	PanicsRecovered  atomic.Uint64 // recovered inference panics
	NonFiniteScores  atomic.Uint64 // demotions caused by a NaN/Inf score
	DegradedSteps    atomic.Uint64 // steps served by demoted sessions

	// Probation accounting (DESIGN.md §13): re-admissions of demoted
	// sessions, repeat demotions of previously demoted sessions, and
	// demotions that latched permanently (fault, probation off, or
	// re-admission cap spent).
	SessionsRecovered atomic.Uint64
	SessionsRedemoted atomic.Uint64
	SessionsLatched   atomic.Uint64

	// Micro-batching instrumentation (see batch.go). QueueLatency is
	// enqueue→flush-start, DecisionLatency is flush-start→completion —
	// together they decompose a batched step's server-side latency.
	// BatchSize records sessions fused per flush.
	QueueLatency    *Histogram
	DecisionLatency *Histogram
	BatchSize       *Histogram

	mu        sync.Mutex
	latencies map[string]*Histogram
}

// NewMetrics returns a zeroed metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		latencies:       make(map[string]*Histogram),
		QueueLatency:    NewHistogram(),
		DecisionLatency: NewHistogram(),
		BatchSize:       NewHistogramBuckets(batchSizeBuckets),
	}
}

// Latency returns (creating on first use) the histogram for an
// endpoint label ("create", "step", "delete", …).
func (m *Metrics) Latency(endpoint string) *Histogram {
	m.mu.Lock()
	h, ok := m.latencies[endpoint]
	if !ok {
		h = NewHistogram()
		m.latencies[endpoint] = h
	}
	m.mu.Unlock()
	return h
}

// promFloat formats a float the way Prometheus expects (no exponent
// mangling needed for our magnitudes; +Inf spelled literally).
func promFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders all metrics in Prometheus text exposition format.
// liveSessions, demotedLive and probationLive are passed in because
// the session table and server own those gauges.
func (m *Metrics) WriteProm(w io.Writer, liveSessions, demotedLive, probationLive int) error {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP osap_sessions_live Currently live guard sessions.\n")
	fmt.Fprintf(w, "# TYPE osap_sessions_live gauge\nosap_sessions_live %d\n", liveSessions)
	fmt.Fprintf(w, "# HELP osap_sessions_demoted_live Live sessions serving in degraded mode.\n")
	fmt.Fprintf(w, "# TYPE osap_sessions_demoted_live gauge\nosap_sessions_demoted_live %d\n", demotedLive)
	fmt.Fprintf(w, "# HELP osap_sessions_probation_live Live demoted sessions still recoverable (shadow scoring).\n")
	fmt.Fprintf(w, "# TYPE osap_sessions_probation_live gauge\nosap_sessions_probation_live %d\n", probationLive)

	counter("osap_sessions_created_total", "Sessions admitted.", m.SessionsCreated.Load())
	counter("osap_sessions_rejected_total", "Sessions refused by admission control.", m.SessionsRejected.Load())
	counter("osap_sessions_evicted_total", "Sessions evicted by the idle-TTL sweeper.", m.SessionsEvicted.Load())
	counter("osap_sessions_deleted_total", "Sessions deleted by clients.", m.SessionsDeleted.Load())
	counter("osap_sessions_drained_total", "Sessions closed by graceful shutdown.", m.SessionsDrained.Load())
	counter("osap_decisions_total", "Guarded decisions served.", m.Decisions.Load())
	counter("osap_decisions_fallback_total", "Decisions acted by the default policy.", m.Fallbacks.Load())
	counter("osap_trigger_firings_total", "Sessions whose safety trigger fired.", m.TriggerFirings.Load())
	counter("osap_drain_rejected_total", "Requests refused while draining.", m.DrainRejected.Load())
	counter("osap_sessions_demoted_total", "Sessions demoted to the safe default policy.", m.SessionsDemoted.Load())
	counter("osap_step_panics_recovered_total", "Inference panics recovered during steps.", m.PanicsRecovered.Load())
	counter("osap_step_nonfinite_total", "Steps whose guard produced a non-finite result.", m.NonFiniteScores.Load())
	counter("osap_decisions_degraded_total", "Decisions served by demoted sessions.", m.DegradedSteps.Load())
	counter("osap_sessions_recovered_total", "Probation re-admissions of demoted sessions.", m.SessionsRecovered.Load())
	counter("osap_sessions_redemoted_total", "Repeat demotions of previously demoted sessions.", m.SessionsRedemoted.Load())
	counter("osap_sessions_latched_total", "Demotions latched permanently (fault or cap spent).", m.SessionsLatched.Load())

	hist := func(name, help string, h *Histogram) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		var cum uint64
		for b := range h.counts {
			cum += h.counts[b].Load()
			le := math.Inf(+1)
			if b < len(h.bounds) {
				le = h.bounds[b]
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(le), cum)
		}
		fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum()), name, cum)
	}
	hist("osap_step_queue_seconds", "Batched step wait from enqueue to flush start.", m.QueueLatency)
	hist("osap_step_decision_seconds", "Batched step time from flush start to completion.", m.DecisionLatency)
	hist("osap_batch_size", "Sessions fused per micro-batch flush.", m.BatchSize)

	// Stable endpoint order for deterministic output.
	m.mu.Lock()
	eps := make([]string, 0, len(m.latencies))
	for ep := range m.latencies {
		eps = append(eps, ep)
	}
	hists := make([]*Histogram, len(eps))
	sort.Strings(eps)
	for i, ep := range eps {
		hists[i] = m.latencies[ep]
	}
	m.mu.Unlock()

	if len(eps) > 0 {
		fmt.Fprintf(w, "# HELP osap_request_duration_seconds Request latency by endpoint.\n")
		fmt.Fprintf(w, "# TYPE osap_request_duration_seconds histogram\n")
	}
	for i, ep := range eps {
		h := hists[i]
		var cum uint64
		for b := range h.counts {
			cum += h.counts[b].Load()
			le := math.Inf(+1)
			if b < len(h.bounds) {
				le = h.bounds[b]
			}
			fmt.Fprintf(w, "osap_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, promFloat(le), cum)
		}
		fmt.Fprintf(w, "osap_request_duration_seconds_sum{endpoint=%q} %s\n", ep, promFloat(h.Sum()))
		fmt.Fprintf(w, "osap_request_duration_seconds_count{endpoint=%q} %d\n", ep, cum)
	}
	return nil
}
