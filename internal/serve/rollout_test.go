package serve

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"osap/internal/experiments"
)

// testRolloutServer boots a server from synthetic v1 artifacts with a
// LoadVersion hook that serves a healthy differently-seeded build for
// any requested version (poisoned-candidate behavior is exercised by
// the cmd/osap-serve rollout selftest, which owns chaos tooling).
func testRolloutServer(t *testing.T, cfg Config) (*Server, *experiments.Artifacts) {
	t.Helper()
	arts, err := SyntheticArtifacts("synthetic", 3, 11)
	if err != nil {
		t.Fatalf("synthetic artifacts: %v", err)
	}
	f, err := NewGuardFactory(arts, GuardConfig{})
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	cfg.Version = "v1"
	if cfg.LoadVersion == nil {
		cfg.LoadVersion = func(version string) (*experiments.Artifacts, string, error) {
			a2, err := SyntheticArtifacts("synthetic", 3, 12)
			if err != nil {
				return nil, "", err
			}
			return a2, "feedc0de", nil
		}
	}
	srv, err := NewServer(f, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() {
		if !srv.Draining() {
			srv.Drain(context.Background(), io.Discard) //nolint:errcheck
		}
	})
	return srv, arts
}

func TestRolloutPickFraction(t *testing.T) {
	base := newGeneration("v1", "", nil, nil)
	cand := newGeneration("v2", "", nil, nil)
	r := newRollout(base, RolloutConfig{})
	if _, err := r.Stage(cand, 0.10, time.Unix(0, 0)); err != nil {
		t.Fatalf("Stage: %v", err)
	}
	const n = 200_000
	hits := 0
	for i := uint64(0); i < n; i++ {
		if r.pick(i) == cand {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("canary fraction %.4f, want ≈0.10", frac)
	}
	// Deterministic: the same index always routes the same way.
	for i := uint64(0); i < 1000; i++ {
		if r.pick(i) != r.pick(i) {
			t.Fatal("pick not deterministic")
		}
	}
	// After rollback everything routes to the incumbent.
	if _, err := r.Rollback("test", false, time.Unix(0, 0)); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	for i := uint64(0); i < 10_000; i++ {
		if r.pick(i) != base {
			t.Fatal("post-rollback pick routed to withdrawn candidate")
		}
	}
}

func TestRolloutStageConflicts(t *testing.T) {
	base := newGeneration("v1", "", nil, nil)
	r := newRollout(base, RolloutConfig{})
	now := time.Unix(0, 0)
	if _, err := r.Stage(newGeneration("v1", "", nil, nil), 0.1, now); err == nil {
		t.Fatal("staged the active version")
	}
	if _, err := r.Stage(newGeneration("v2", "", nil, nil), 0.1, now); err != nil {
		t.Fatalf("Stage v2: %v", err)
	}
	if _, err := r.Stage(newGeneration("v3", "", nil, nil), 0.1, now); err == nil {
		t.Fatal("staged a second candidate")
	}
	if _, err := r.Promote("ok", false, now); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if r.Active().Version() != "v2" || r.Candidate() != nil {
		t.Fatalf("post-promote state: active=%s candidate=%v", r.Active().Version(), r.Candidate())
	}
	// Re-staging the retired v1 reuses its generation.
	v1b := newGeneration("v1", "", nil, nil)
	staged, err := r.Stage(v1b, 0.2, now)
	if err != nil {
		t.Fatalf("re-stage v1: %v", err)
	}
	if staged == v1b || staged != base {
		t.Fatal("re-stage did not reuse the original generation")
	}
	if len(r.Events()) != 3 {
		t.Fatalf("event log has %d entries, want 3", len(r.Events()))
	}
}

func TestRolloutAutoRollbackOnDemotions(t *testing.T) {
	base := newGeneration("v1", "", nil, nil)
	cand := newGeneration("v2", "", nil, nil)
	r := newRollout(base, RolloutConfig{MinSamples: 10, MinSessions: 2, RollbackMargin: 0.05})
	now := time.Unix(0, 0)
	if _, err := r.Stage(cand, 0.5, now); err != nil {
		t.Fatalf("Stage: %v", err)
	}
	// Incumbent healthy baseline.
	base.stats.Sessions.Store(100)
	base.stats.Decisions.Store(1000)
	// Candidate below thresholds: nothing happens.
	cand.stats.Sessions.Store(1)
	cand.stats.Decisions.Store(5)
	cand.stats.Demotions.Store(1)
	cand.stats.Latched.Store(1)
	r.evaluate(now)
	if r.Candidate() != cand {
		t.Fatal("controller acted below min samples")
	}
	// Past thresholds with every session latching permanently: rollback.
	// (The controller judges Latched, not raw Demotions — transient
	// excursions that probation recovers must not trip it.)
	cand.stats.Sessions.Store(10)
	cand.stats.Decisions.Store(100)
	cand.stats.Demotions.Store(10)
	cand.stats.Latched.Store(10)
	r.evaluate(now)
	if r.Candidate() != nil {
		t.Fatal("auto-rollback did not fire")
	}
	if r.rollbacks.Load() != 1 {
		t.Fatalf("rollbacks = %d, want 1", r.rollbacks.Load())
	}
	ev := r.Events()
	last := ev[len(ev)-1]
	if last.Action != "rolled_back" || !last.Auto {
		t.Fatalf("last event %+v, want auto rolled_back", last)
	}
}

// TestRolloutIgnoresRecoveredDemotions pins the probation interaction
// (DESIGN.md §13): demotion events that probation recovered (high
// Demotions, low Latched) must not trip auto-rollback — only the
// permanently latched rate is judged.
func TestRolloutIgnoresRecoveredDemotions(t *testing.T) {
	base := newGeneration("v1", "", nil, nil)
	cand := newGeneration("v2", "", nil, nil)
	r := newRollout(base, RolloutConfig{MinSamples: 10, MinSessions: 2, RollbackMargin: 0.05, PromoteAfter: 1 << 30})
	now := time.Unix(0, 0)
	if _, err := r.Stage(cand, 0.5, now); err != nil {
		t.Fatalf("Stage: %v", err)
	}
	base.stats.Sessions.Store(100)
	base.stats.Decisions.Store(1000)
	// Every candidate session demoted transiently and recovered; none
	// latched. The raw demotion rate (1.0/session) would have rolled
	// back under the old rule.
	cand.stats.Sessions.Store(10)
	cand.stats.Decisions.Store(100)
	cand.stats.Demotions.Store(10)
	cand.stats.Recovered.Store(10)
	r.evaluate(now)
	if r.Candidate() != cand {
		t.Fatal("controller rolled back on recovered demotions")
	}
	// One permanent latch across 10 sessions: 0.10 > margin → rollback.
	cand.stats.Latched.Store(1)
	r.evaluate(now)
	if r.Candidate() != nil {
		t.Fatal("controller ignored the latched rate")
	}
}

func TestRolloutAutoPromote(t *testing.T) {
	base := newGeneration("v1", "", nil, nil)
	cand := newGeneration("v2", "", nil, nil)
	r := newRollout(base, RolloutConfig{MinSamples: 10, MinSessions: 2, PromoteAfter: 50})
	now := time.Unix(0, 0)
	if _, err := r.Stage(cand, 0.5, now); err != nil {
		t.Fatalf("Stage: %v", err)
	}
	base.stats.Sessions.Store(100)
	base.stats.Decisions.Store(1000)
	cand.stats.Sessions.Store(5)
	cand.stats.Decisions.Store(60)
	r.evaluate(now)
	if r.Active() != cand || r.Candidate() != nil {
		t.Fatal("auto-promote did not fire")
	}
	if r.promotions.Load() != 1 {
		t.Fatalf("promotions = %d, want 1", r.promotions.Load())
	}
}

func TestDriftSetMergeDeterministic(t *testing.T) {
	d := newDriftSet()
	for i := 0; i < 10_000; i++ {
		d.Observe(uint32(i), uint8(i%driftSignals), float64(i%97)/97)
	}
	a, b := d.Merged(0), d.Merged(0)
	if a.Count() != b.Count() {
		t.Fatalf("merge counts differ: %d vs %d", a.Count(), b.Count())
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if math.Float64bits(a.Quantile(q)) != math.Float64bits(b.Quantile(q)) {
			t.Fatalf("Quantile(%g) differs between identical merges", q)
		}
	}
	// Non-finite scores are dropped, never folded.
	d.Observe(1, 0, math.NaN())
	d.Observe(2, 0, math.Inf(1))
	m := d.Merged(0)
	if m.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", m.Dropped())
	}
}

func TestServerStagePromoteHTTP(t *testing.T) {
	srv, _ := testRolloutServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Sessions created pre-stage bind v1.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"scheme":"ND"}`))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	var cr createResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if cr.Version != "v1" {
		t.Fatalf("pre-stage session version %q, want v1", cr.Version)
	}

	// Stage v2 at 100% so the next session must bind it.
	resp, err = http.Post(ts.URL+"/admin/rollout", "application/json",
		strings.NewReader(`{"action":"stage","version":"v2","fraction":1.0}`))
	if err != nil {
		t.Fatalf("stage: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stage status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"scheme":"ND"}`))
	if err != nil {
		t.Fatalf("create 2: %v", err)
	}
	var cr2 createResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr2); err != nil {
		t.Fatalf("decode 2: %v", err)
	}
	resp.Body.Close()
	if cr2.Version != "v2" {
		t.Fatalf("canary session version %q, want v2", cr2.Version)
	}

	// Dashboard sees both versions and the canary state.
	resp, err = http.Get(ts.URL + "/dashboard")
	if err != nil {
		t.Fatalf("dashboard: %v", err)
	}
	var dash struct {
		Versions []struct {
			Version string `json:"version"`
			Role    string `json:"role"`
		} `json:"versions"`
		Rollout struct {
			Active    string `json:"active"`
			Candidate string `json:"candidate"`
		} `json:"rollout"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dash); err != nil {
		t.Fatalf("decode dashboard: %v", err)
	}
	resp.Body.Close()
	if dash.Rollout.Active != "v1" || dash.Rollout.Candidate != "v2" || len(dash.Versions) != 2 {
		t.Fatalf("dashboard state: %+v", dash)
	}

	// Manual promote flips the active pointer.
	resp, err = http.Post(ts.URL+"/admin/rollout", "application/json",
		strings.NewReader(`{"action":"promote"}`))
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if got := srv.Rollout().Active().Version(); got != "v2" {
		t.Fatalf("active after promote %q, want v2", got)
	}

	// Metrics expose build info and per-version families.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	body := string(raw)
	for _, want := range []string{
		`osap_build_info{version=`,
		`artifact_version="v2"`,
		`osap_version_sessions_total{version="v1"} 1`,
		`osap_version_sessions_total{version="v2"} 1`,
		`osap_rollout_promotions_total 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestStageWithoutRegistry(t *testing.T) {
	arts, err := SyntheticArtifacts("synthetic", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewGuardFactory(arts, GuardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/admin/rollout", "application/json",
		strings.NewReader(`{"action":"stage","version":"v2"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("stage without registry: status %d, want 501", resp.StatusCode)
	}
}
