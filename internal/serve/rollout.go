package serve

// Canary rollout control plane (DESIGN.md §11). The server holds a set
// of Generations — one per loaded artifact version, each with its own
// GuardFactory, micro-batcher, per-version counters and drift sketches
// — and a Rollout router that picks which generation a NEW session
// binds at admission. Live sessions keep their pinned generation until
// they end, so staging, promoting or rolling back a version never
// perturbs an existing session's decision stream: the Neural-Simplex
// move of switching toward a candidate controller only on fresh
// traffic, with the incumbent always intact to fall back to.
//
// State machine (one candidate at a time):
//
//	steady ──stage──▶ canary ──promote (manual or auto)──▶ steady′
//	                    │
//	                    └──rollback (manual or auto)──▶ steady
//
// Auto-rollback fires when the candidate's permanently-latched
// demotion rate (per session; transient excursions that probation
// recovers don't count — DESIGN.md §13) or fallback rate (per
// decision) exceeds the incumbent's by RollbackMargin after MinSamples
// decisions across MinSessions sessions; auto-promote fires when the
// candidate stays healthy for PromoteAfter decisions. Both are evaluated on the step path (every
// 64th candidate decision) and on every /dashboard read, so a
// quiescent fleet still converges.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"osap/internal/sketch"
)

// VersionStats are one generation's serving counters, updated lock-free
// on the step path and read by the rollout controller, /dashboard and
// /metrics.
type VersionStats struct {
	Sessions  atomic.Uint64 // sessions admitted on this version
	Live      atomic.Int64  // sessions currently pinned to this version
	Decisions atomic.Uint64 // steps served
	Fallbacks atomic.Uint64 // steps acted by the default policy
	Demotions atomic.Uint64 // demotion events while on this version
	Degraded  atomic.Uint64 // steps served in degraded mode
	Recovered atomic.Uint64 // probation re-admissions (DESIGN.md §13)
	Redemoted atomic.Uint64 // repeat demotions after a first one
	Latched   atomic.Uint64 // demotions that latched permanently
	Latency   *Histogram    // server-side step latency
}

// Generation is one loaded artifact version inside the server: the
// immutable artifacts behind a factory, the version's own batcher (the
// batch engine fuses observations across sessions of ONE artifact set
// only — fusing across versions would feed session A's step through
// session B's weights), and its observability state.
type Generation struct {
	version  string
	checksum string
	factory  *GuardFactory
	batcher  *Batcher // nil when batching is disabled
	stats    *VersionStats
	drift    *DriftSet
}

func newGeneration(version, checksum string, f *GuardFactory, b *Batcher) *Generation {
	return &Generation{
		version:  version,
		checksum: checksum,
		factory:  f,
		batcher:  b,
		stats:    &VersionStats{Latency: NewHistogram()},
		drift:    newDriftSet(),
	}
}

// Version returns the generation's artifact version label.
func (g *Generation) Version() string { return g.version }

// Checksum returns the artifact envelope SHA-256 ("" when booted from
// a bare artifact file with no registry).
func (g *Generation) Checksum() string { return g.checksum }

// Stats exposes the generation's counters (tests, dashboard).
func (g *Generation) Stats() *VersionStats { return g.stats }

// RolloutConfig tunes the canary controller. The zero value selects
// the defaults noted per field.
type RolloutConfig struct {
	// CanaryFraction is the default fraction of new sessions routed to
	// a staged candidate when the stage request names none (0 → 0.10).
	CanaryFraction float64
	// RollbackMargin is how much worse (absolute rate) the candidate
	// may run before auto-rollback (0 → 0.05).
	RollbackMargin float64
	// MinSamples is the candidate decision count before the controller
	// judges it at all (0 → 500).
	MinSamples int
	// MinSessions is the candidate session count before the controller
	// judges it (0 → 20).
	MinSessions int
	// PromoteAfter is the healthy-decision soak after which the
	// candidate auto-promotes (0 → 2500).
	PromoteAfter int
}

func (c RolloutConfig) withDefaults() RolloutConfig {
	if c.CanaryFraction <= 0 || c.CanaryFraction > 1 {
		c.CanaryFraction = 0.10
	}
	if c.RollbackMargin <= 0 {
		c.RollbackMargin = 0.05
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 500
	}
	if c.MinSessions <= 0 {
		c.MinSessions = 20
	}
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = 2500
	}
	return c
}

// RolloutEvent is one control-plane transition, kept in a bounded ring
// for the dashboard.
type RolloutEvent struct {
	Seq     uint64 `json:"seq"`
	UnixMs  int64  `json:"unix_ms"`
	Action  string `json:"action"` // staged | promoted | rolled_back
	Version string `json:"version"`
	Reason  string `json:"reason,omitempty"`
	Auto    bool   `json:"auto"`
}

// maxRolloutEvents bounds the dashboard's event history.
const maxRolloutEvents = 64

// Rollout routes new sessions across generations and runs the
// promote/rollback controller. The admission path reads only the two
// atomic pointers and the fraction; mu serializes state transitions.
type Rollout struct {
	cfg       RolloutConfig
	active    atomic.Pointer[Generation]
	candidate atomic.Pointer[Generation]
	fracBP    atomic.Uint64 // canary fraction in basis points (0..10000)

	promotions atomic.Uint64
	rollbacks  atomic.Uint64

	mu sync.Mutex
	// all holds every generation ever staged, in stage order.
	//
	//osap:guardedby mu
	all []*Generation
	//osap:guardedby mu
	byVersion map[string]*Generation
	//osap:guardedby mu
	events []RolloutEvent
	//osap:guardedby mu
	eventSeq uint64
}

func newRollout(base *Generation, cfg RolloutConfig) *Rollout {
	r := &Rollout{
		cfg:       cfg.withDefaults(),
		byVersion: map[string]*Generation{base.version: base},
		all:       []*Generation{base},
	}
	r.active.Store(base)
	return r
}

// mix64 is the splitmix64 finalizer: session index → uniform 64-bit
// hash, so canary assignment is deterministic in arrival order but
// uncorrelated with it.
//
//osap:hotpath
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// pick routes one new session by its 0-based admission index: the
// candidate gets its configured fraction of NEW sessions, everyone
// else binds the active generation.
//
//osap:hotpath
func (r *Rollout) pick(idx uint64) *Generation {
	if cand := r.candidate.Load(); cand != nil {
		if mix64(idx)%10000 < r.fracBP.Load() {
			return cand
		}
	}
	return r.active.Load()
}

// Active returns the incumbent generation.
func (r *Rollout) Active() *Generation { return r.active.Load() }

// Candidate returns the staged candidate, or nil outside a canary.
func (r *Rollout) Candidate() *Generation { return r.candidate.Load() }

// lookup returns a previously staged generation by version, or nil.
func (r *Rollout) lookup(version string) *Generation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byVersion[version]
}

// generations snapshots every generation in stage order.
func (r *Rollout) generations() []*Generation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Generation(nil), r.all...)
}

func (r *Rollout) eventLocked(action, version, reason string, auto bool, now time.Time) {
	r.eventSeq++
	r.events = append(r.events, RolloutEvent{
		Seq:     r.eventSeq,
		UnixMs:  now.UnixMilli(),
		Action:  action,
		Version: version,
		Reason:  reason,
		Auto:    auto,
	})
	if len(r.events) > maxRolloutEvents {
		r.events = r.events[len(r.events)-maxRolloutEvents:]
	}
}

// Events snapshots the transition history, oldest first.
func (r *Rollout) Events() []RolloutEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RolloutEvent(nil), r.events...)
}

// Stage installs gen as the canary candidate, routing fraction
// (0 → cfg.CanaryFraction) of new sessions to it. Re-staging a version
// seen before reuses its Generation — stats, batcher and any sessions
// still pinned to it continue — and the returned *Generation is the
// one actually staged, so a caller that built gen fresh can release
// its copy when a cached one won.
func (r *Rollout) Stage(gen *Generation, fraction float64, now time.Time) (*Generation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if act := r.active.Load(); act != nil && act.version == gen.version {
		return nil, fmt.Errorf("serve: version %s is already active", gen.version)
	}
	if cand := r.candidate.Load(); cand != nil {
		if cand.version == gen.version {
			return nil, fmt.Errorf("serve: version %s is already the candidate", gen.version)
		}
		return nil, fmt.Errorf("serve: candidate %s already staged; promote or roll back first", cand.version)
	}
	if existing := r.byVersion[gen.version]; existing != nil {
		gen = existing
	} else {
		r.all = append(r.all, gen)
		r.byVersion[gen.version] = gen
	}
	if fraction <= 0 || fraction > 1 {
		fraction = r.cfg.CanaryFraction
	}
	bp := uint64(fraction*10000 + 0.5)
	if bp > 10000 {
		bp = 10000
	}
	r.fracBP.Store(bp)
	r.candidate.Store(gen)
	r.eventLocked("staged", gen.version, fmt.Sprintf("canary fraction %.4f", float64(bp)/10000), false, now)
	return gen, nil
}

// Promote makes the candidate the active generation. The old incumbent
// stays loaded (sessions pinned to it keep serving) but receives no
// new sessions.
func (r *Rollout) Promote(reason string, auto bool, now time.Time) (*Generation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoteLocked(r.candidate.Load(), reason, auto, now)
}

func (r *Rollout) promoteLocked(cand *Generation, reason string, auto bool, now time.Time) (*Generation, error) {
	if cand == nil || r.candidate.Load() != cand {
		return nil, fmt.Errorf("serve: no candidate staged")
	}
	r.candidate.Store(nil)
	r.active.Store(cand)
	r.promotions.Add(1)
	r.eventLocked("promoted", cand.version, reason, auto, now)
	return cand, nil
}

// Rollback withdraws the candidate: new sessions all bind the
// incumbent again. Sessions already pinned to the candidate keep their
// generation (demoted ones stay demoted) until they end.
func (r *Rollout) Rollback(reason string, auto bool, now time.Time) (*Generation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rollbackLocked(r.candidate.Load(), reason, auto, now)
}

func (r *Rollout) rollbackLocked(cand *Generation, reason string, auto bool, now time.Time) (*Generation, error) {
	if cand == nil || r.candidate.Load() != cand {
		return nil, fmt.Errorf("serve: no candidate staged")
	}
	r.candidate.Store(nil)
	r.rollbacks.Add(1)
	r.eventLocked("rolled_back", cand.version, reason, auto, now)
	return cand, nil
}

// evaluate runs one controller pass: judge the candidate against the
// incumbent and auto-rollback or auto-promote. Cheap when no candidate
// is staged or the sample is still too small; safe to call from many
// goroutines (transitions re-check the candidate under mu).
func (r *Rollout) evaluate(now time.Time) {
	cand := r.candidate.Load()
	if cand == nil {
		return
	}
	act := r.active.Load()
	cd := cand.stats.Decisions.Load()
	cs := cand.stats.Sessions.Load()
	if cd < uint64(r.cfg.MinSamples) || cs < uint64(r.cfg.MinSessions) {
		return
	}
	// Judge on permanent latches, not raw demotions: a transient
	// excursion that probation recovers is not evidence of a bad
	// artifact. Without probation every demotion latches, so this is
	// the pre-probation demotion rate exactly.
	candDem := float64(cand.stats.Latched.Load()) / float64(cs)
	candFb := float64(cand.stats.Fallbacks.Load()) / float64(cd)
	var actDem, actFb float64
	if as := act.stats.Sessions.Load(); as > 0 {
		actDem = float64(act.stats.Latched.Load()) / float64(as)
	}
	if ad := act.stats.Decisions.Load(); ad > 0 {
		actFb = float64(act.stats.Fallbacks.Load()) / float64(ad)
	}
	// A lost race below (another goroutine already transitioned) just
	// returns an error, which is discarded: the transition happened.
	margin := r.cfg.RollbackMargin
	switch {
	case candDem > actDem+margin:
		r.mu.Lock()
		_, _ = r.rollbackLocked(cand, fmt.Sprintf(
			"demotion rate %.4f/session exceeds incumbent %.4f by more than %.4f (%d sessions, %d decisions)",
			candDem, actDem, margin, cs, cd), true, now)
		r.mu.Unlock()
	case candFb > actFb+margin:
		r.mu.Lock()
		_, _ = r.rollbackLocked(cand, fmt.Sprintf(
			"fallback rate %.4f/decision exceeds incumbent %.4f by more than %.4f (%d sessions, %d decisions)",
			candFb, actFb, margin, cs, cd), true, now)
		r.mu.Unlock()
	case cd >= uint64(r.cfg.PromoteAfter):
		r.mu.Lock()
		_, _ = r.promoteLocked(cand, fmt.Sprintf(
			"healthy after %d decisions across %d sessions (demotion %.4f vs %.4f, fallback %.4f vs %.4f)",
			cd, cs, candDem, actDem, candFb, actFb), true, now)
		r.mu.Unlock()
	}
}

// CanaryFraction returns the live canary fraction (0 when no candidate
// is staged).
func (r *Rollout) CanaryFraction() float64 {
	if r.candidate.Load() == nil {
		return 0
	}
	return float64(r.fracBP.Load()) / 10000
}

// ---- fleet drift sketches ----

// driftSignals is the number of tracked guard-score signals.
const driftSignals = 3

// driftSignalNames label the sketch families on /metrics and
// /dashboard, indexed by the session's sigIdx.
var driftSignalNames = [driftSignals]string{"state", "policy", "value"}

// driftSignalIndex maps a session scheme to its signal family: the
// paper's U_S / U_π / U_V.
func driftSignalIndex(scheme string) uint8 {
	switch scheme {
	case SchemeAEns:
		return 1
	case SchemeVEns:
		return 2
	default:
		return 0
	}
}

// driftShardCount is the sketch shard count per generation (power of
// two): enough that concurrent steps rarely contend on one mutex,
// small enough that merging at scrape time stays trivial.
const driftShardCount = 16

// driftShard is one lock-striped slot: a mutex and one sketch per
// signal, padded so neighboring shards don't share a cache line.
type driftShard struct {
	mu sync.Mutex
	//osap:guardedby mu
	sk [driftSignals]*sketch.Sketch
	_  [64]byte
}

// DriftSet holds one generation's guard-score sketches, lock-striped
// by session. Merging at scrape time walks shards in ascending index,
// so two scrapes over the same history are bit-identical
// (internal/sketch's determinism contract).
type DriftSet struct {
	shards [driftShardCount]driftShard
}

func newDriftSet() *DriftSet {
	d := &DriftSet{}
	for i := range d.shards {
		for j := range d.shards[i].sk { //osap:ignore guardedby construction: the set is not shared yet
			d.shards[i].sk[j] = sketch.New(sketch.DefaultCompression)
		}
	}
	return d
}

// Observe records one guard score for a session pinned to shard (any
// value; masked internally) under signal sig.
//
//osap:hotpath
func (d *DriftSet) Observe(shard uint32, sig uint8, score float64) {
	sh := &d.shards[shard&(driftShardCount-1)]
	sh.mu.Lock()
	sh.sk[sig].Add(score)
	sh.mu.Unlock()
}

// Merged folds every shard's sketch for one signal into a fresh
// sketch, in ascending shard order. The shard sketches are not
// mutated beyond their own pending-buffer compression.
func (d *DriftSet) Merged(sig int) *sketch.Sketch {
	out := sketch.New(sketch.DefaultCompression)
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		sh.sk[sig].MergeInto(out)
		sh.mu.Unlock()
	}
	return out
}
