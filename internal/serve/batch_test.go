package serve

import (
	"context"
	"errors"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osap/internal/stats"
)

// batchTestServer builds a server with batching tuned for tests: a
// real window so concurrent steps genuinely fuse, one collector so
// batch composition is deterministic under load.
func batchTestServer(t *testing.T, batch BatchConfig) *Server {
	t.Helper()
	f, err := NewGuardFactory(sharedArtifacts(t), GuardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(f, Config{Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// obsStream generates a deterministic per-session observation
// sequence: a throughput-like positive random walk.
func obsStream(seed uint64, dim, steps int) [][]float64 {
	rng := stats.NewRNG(seed)
	out := make([][]float64, steps)
	level := 1.0
	for i := range out {
		obs := make([]float64, dim)
		for j := range obs {
			level += 0.1 * rng.NormFloat64()
			if level < 0.05 {
				level = 0.05
			}
			obs[j] = level
		}
		out[i] = obs
	}
	return out
}

// TestBatchedMatchesSequential is the end-to-end equivalence property:
// sessions stepped concurrently through the micro-batching collector
// produce, step for step, bit-identical results to a reference session
// built from the same factory and stepped alone — for every scheme.
func TestBatchedMatchesSequential(t *testing.T) {
	s := batchTestServer(t, BatchConfig{Window: 2 * time.Millisecond, MaxBatch: 64, Collectors: 1})
	defer s.Drain(context.Background(), io.Discard) //nolint:errcheck

	schemes := s.factory.Schemes()
	if len(schemes) != 3 {
		t.Fatalf("want all 3 schemes from synthetic artifacts, got %v", schemes)
	}
	const perScheme, steps = 4, 60
	dim := s.factory.ObsDim()

	type lane struct {
		scheme string
		seed   uint64
		stream [][]float64
		got    []StepResult
	}
	var lanes []*lane
	for si, scheme := range schemes {
		for k := 0; k < perScheme; k++ {
			lanes = append(lanes, &lane{
				scheme: scheme,
				seed:   uint64(1000 + si*100 + k),
				stream: obsStream(uint64(1000+si*100+k), dim, steps),
			})
		}
	}

	// Drive every lane concurrently through the batched server.
	var wg sync.WaitGroup
	for _, ln := range lanes {
		sess, err := s.createSession(ln.scheme)
		if err != nil {
			t.Fatal(err)
		}
		if sess.class == classSeq {
			t.Fatalf("scheme %s classified classSeq — batching never engages", ln.scheme)
		}
		wg.Add(1)
		go func(ln *lane, sess *Session) {
			defer wg.Done()
			for _, obs := range ln.stream {
				res, err := s.stepSession(sess, obs)
				if err != nil {
					t.Errorf("%s: step: %v", ln.scheme, err)
					return
				}
				ln.got = append(ln.got, res)
			}
		}(ln, sess)
	}
	wg.Wait()
	if s.metrics.BatchSize.Count() == 0 {
		t.Fatal("no batches flushed — collector never engaged")
	}

	// Replay each lane on a private sequential guard and compare.
	for _, ln := range lanes {
		g, err := s.factory.NewGuard(ln.scheme)
		if err != nil {
			t.Fatal(err)
		}
		ref := newSession("ref", ln.scheme, g, time.Now())
		if len(ln.got) != steps {
			t.Fatalf("%s: lane finished %d/%d steps", ln.scheme, len(ln.got), steps)
		}
		for i, obs := range ln.stream {
			want, err := ref.Step(obs, time.Now())
			if err != nil {
				t.Fatal(err)
			}
			got := ln.got[i]
			if got.Action != want.Action {
				t.Fatalf("%s step %d: action %d != %d", ln.scheme, i, got.Action, want.Action)
			}
			if math.Float64bits(got.Decision.Score) != math.Float64bits(want.Decision.Score) {
				t.Fatalf("%s step %d: score %g != %g (not bit-identical)",
					ln.scheme, i, got.Decision.Score, want.Decision.Score)
			}
			if got.Decision.UsedDefault != want.Decision.UsedDefault ||
				got.Decision.Fired != want.Decision.Fired ||
				got.Decision.Step != want.Decision.Step ||
				got.Demoted != want.Demoted {
				t.Fatalf("%s step %d: metadata %+v != %+v", ln.scheme, i, got, want)
			}
		}
	}
}

// TestBatchedStepZeroAlloc is the CI allocation gate for the batched
// decision path: a steady-state step through collector parking, fused
// scoring and completion must not allocate — on the caller's
// goroutine or the collector's.
func TestBatchedStepZeroAlloc(t *testing.T) {
	s := batchTestServer(t, BatchConfig{Window: -1, MaxBatch: 16, Collectors: 1})
	defer s.Drain(context.Background(), io.Discard) //nolint:errcheck
	for _, scheme := range s.factory.Schemes() {
		sess, err := s.createSession(scheme)
		if err != nil {
			t.Fatal(err)
		}
		obs := obsStream(9, s.factory.ObsDim(), 1)[0]
		for i := 0; i < 50; i++ { // warm scratch, pool and histograms
			if _, err := s.stepSession(sess, obs); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := s.stepSession(sess, obs); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: batched step allocates %.2f/op, want 0", scheme, allocs)
		}
	}
}

// TestBatcherRaceHammer runs under -race in `make race`: concurrent
// steps across schemes, session deletion mid-flight, and a drain that
// lands mid-flush. Steppers follow the handler discipline (inflight +
// draining check) exactly like the HTTP/binary front ends.
func TestBatcherRaceHammer(t *testing.T) {
	s := batchTestServer(t, BatchConfig{Window: 200 * time.Microsecond, MaxBatch: 8, Collectors: 2})
	schemes := s.factory.Schemes()
	dim := s.factory.ObsDim()

	const nSess = 24
	sessions := make([]*Session, nSess)
	for i := range sessions {
		sess, err := s.createSession(schemes[i%len(schemes)])
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = sess
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i, sess := range sessions {
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			stream := obsStream(uint64(i), dim, 16)
			for !stop.Load() {
				for _, obs := range stream {
					s.opGate.RLock()
					if s.draining.Load() {
						s.opGate.RUnlock()
						return
					}
					_, err := s.stepSession(sess, obs)
					s.opGate.RUnlock()
					if err != nil {
						if errors.Is(err, ErrSessionClosed) {
							return // deleted or drained under us
						}
						t.Errorf("step: %v", err)
						return
					}
				}
			}
		}(i, sess)
	}
	// Delete a third of the fleet while their steppers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nSess; i += 3 {
			time.Sleep(300 * time.Microsecond)
			s.table.Delete(sessions[i].ID())
		}
	}()

	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx, io.Discard); err != nil {
		t.Fatalf("drain: %v", err)
	}
	stop.Store(true)
	wg.Wait()
	if got := s.Sessions(); got != 0 {
		t.Fatalf("%d sessions survived drain", got)
	}
}

// BenchmarkBatchedStep measures steady-state decision throughput
// through the micro-batching collector with a fleet of concurrent
// sessions — the server-side cost floor of the batched serving path,
// without transport. b.N counts individual session steps.
func BenchmarkBatchedStep(b *testing.B) {
	f, err := NewGuardFactory(sharedArtifacts(b), GuardConfig{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewServer(f, Config{Batch: BatchConfig{Window: time.Millisecond, MaxBatch: 256}})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Drain(context.Background(), io.Discard) //nolint:errcheck
	schemes := f.Schemes()
	const fleet = 256
	sessions := make([]*Session, fleet)
	for i := range sessions {
		if sessions[i], err = s.createSession(schemes[i%len(schemes)]); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Uint64
	obs := obsStream(7, f.ObsDim(), 64)
	b.SetParallelism(fleet / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := sessions[next.Add(1)%fleet]
		i := 0
		for pb.Next() {
			if _, err := s.stepSession(sess, obs[i&63]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

func TestClassifyGuard(t *testing.T) {
	f, err := NewGuardFactory(sharedArtifacts(t), GuardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]batchClass{
		SchemeND:   classBatchState,
		SchemeAEns: classBatchPolicy,
		SchemeVEns: classBatchValue,
	}
	for scheme, cls := range want {
		g, err := f.NewGuard(scheme)
		if err != nil {
			t.Fatal(err)
		}
		if got := classifyGuard(g); got != cls {
			t.Errorf("%s: class %d, want %d", scheme, got, cls)
		}
	}
}
