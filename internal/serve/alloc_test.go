package serve

import "testing"

// TestHotHelpersZeroAlloc pins the //osap:hotpath contracts of the
// small helpers the step path leans on: the session-table hash, the
// canary router hash, the latency histogram, and the drift sketches.
func TestHotHelpersZeroAlloc(t *testing.T) {
	t.Run("fnv1a", func(t *testing.T) {
		var h uint64
		allocs := testing.AllocsPerRun(1000, func() {
			h = fnv1a("session-abcdef-0123456789")
		})
		if allocs != 0 {
			t.Fatalf("fnv1a allocated %.1f times per run, want 0", allocs)
		}
		if h == 0 {
			t.Fatal("fnv1a returned 0")
		}
	})
	t.Run("mix64", func(t *testing.T) {
		var h uint64
		allocs := testing.AllocsPerRun(1000, func() {
			h = mix64(h + 12345)
		})
		if allocs != 0 {
			t.Fatalf("mix64 allocated %.1f times per run, want 0", allocs)
		}
	})
	t.Run("histogram-observe", func(t *testing.T) {
		h := NewHistogram()
		allocs := testing.AllocsPerRun(1000, func() {
			h.Observe(0.0042)
		})
		if allocs != 0 {
			t.Fatalf("Histogram.Observe allocated %.1f times per run, want 0", allocs)
		}
		if h.Count() == 0 {
			t.Fatal("Histogram.Observe recorded nothing")
		}
	})
	t.Run("drift-observe", func(t *testing.T) {
		d := newDriftSet()
		i := 0
		allocs := testing.AllocsPerRun(1000, func() {
			d.Observe(uint32(i), uint8(i%driftSignals), float64(i)*0.25)
			i++
		})
		if allocs != 0 {
			t.Fatalf("DriftSet.Observe allocated %.1f times per run, want 0", allocs)
		}
	})
}
