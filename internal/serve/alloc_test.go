package serve

import (
	"testing"
	"time"

	"osap/internal/abr"
	"osap/internal/core"
	"osap/internal/learn"
	"osap/internal/stats"
)

// TestHotHelpersZeroAlloc pins the //osap:hotpath contracts of the
// small helpers the step path leans on: the session-table hash, the
// canary router hash, the latency histogram, and the drift sketches.
func TestHotHelpersZeroAlloc(t *testing.T) {
	t.Run("fnv1a", func(t *testing.T) {
		var h uint64
		allocs := testing.AllocsPerRun(1000, func() {
			h = fnv1a("session-abcdef-0123456789")
		})
		if allocs != 0 {
			t.Fatalf("fnv1a allocated %.1f times per run, want 0", allocs)
		}
		if h == 0 {
			t.Fatal("fnv1a returned 0")
		}
	})
	t.Run("mix64", func(t *testing.T) {
		var h uint64
		allocs := testing.AllocsPerRun(1000, func() {
			h = mix64(h + 12345)
		})
		if allocs != 0 {
			t.Fatalf("mix64 allocated %.1f times per run, want 0", allocs)
		}
	})
	t.Run("histogram-observe", func(t *testing.T) {
		h := NewHistogram()
		allocs := testing.AllocsPerRun(1000, func() {
			h.Observe(0.0042)
		})
		if allocs != 0 {
			t.Fatalf("Histogram.Observe allocated %.1f times per run, want 0", allocs)
		}
		if h.Count() == 0 {
			t.Fatal("Histogram.Observe recorded nothing")
		}
	})
	t.Run("drift-observe", func(t *testing.T) {
		d := newDriftSet()
		i := 0
		allocs := testing.AllocsPerRun(1000, func() {
			d.Observe(uint32(i), uint8(i%driftSignals), float64(i)*0.25)
			i++
		})
		if allocs != 0 {
			t.Fatalf("DriftSet.Observe allocated %.1f times per run, want 0", allocs)
		}
	})
}

// TestGateStepZeroAlloc pins the online-learning trust gate's
// //osap:hotpath contract: a gated Session.Step — including admissions,
// which copy the feature vector into the handoff ring — allocates
// nothing. The learner's flush interval is an hour so its background
// goroutine stays quiescent during measurement (AllocsPerRun counts
// process-wide mallocs), and the artifacts' alphas are relaxed so the
// untrained ensembles' disagreement never vetoes: admission is decided
// by U_S alone, on samples drawn from the OC-SVM's own training
// distribution.
func TestGateStepZeroAlloc(t *testing.T) {
	arts, err := SyntheticArtifacts("gatealloc", 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	arts.AlphaPi, arts.AlphaV = 1e9, 1e9
	f, err := NewGuardFactory(arts, GuardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	learner, err := learn.New(learn.Config{
		Artifacts:     arts,
		SignalConfig:  core.DefaultStateSignalConfig(),
		Trim:          core.DefaultEnsembleConfig(),
		Extract:       abr.LastThroughputMbps,
		RateBurst:     1 << 30, // never rate-limit: keep the admission path hot
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer learner.Stop() //nolint:errcheck // no log configured
	g, err := f.NewGuard(SchemeND)
	if err != nil {
		t.Fatal(err)
	}
	s := newSession("gate-alloc", SchemeND, g, time.Now())
	s.gate, err = learner.NewGate(0)
	if err != nil {
		t.Fatal(err)
	}

	// Throughput samples from the OC-SVM's training distribution
	// (3±0.5 Mbps), precomputed so the step loop only writes one obs
	// slot.
	rng := stats.NewRNG(42)
	samples := make([]float64, 4096)
	for i := range samples {
		samples[i] = 3 + 0.5*rng.NormFloat64()
	}
	const thrIdx = 3*abr.HistoryLen - 1 // throughput row (2), newest slot
	obs := make([]float64, abr.ObsDim)
	now := time.Now()
	i := 0
	step := func() {
		obs[thrIdx] = samples[i%len(samples)] / 10 // obs stores Mbps/10
		i++
		if _, err := s.Step(obs, now); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 200; j++ {
		step() // warm: fill feature windows past the gate's warmup verdicts
	}
	if learner.Counters().Admitted.Load() == 0 {
		t.Fatal("gate admitted nothing during warmup; the zero-alloc run would not cover the admission path")
	}
	allocs := testing.AllocsPerRun(1000, step)
	if allocs != 0 {
		t.Errorf("gated Session.Step allocates %.2f/op on the clean path, want 0", allocs)
	}
	if learner.Counters().RingDropped.Load() != 0 {
		t.Error("handoff ring overflowed during the measurement window")
	}
}
