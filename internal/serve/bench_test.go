package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"osap/internal/abr"
)

// BenchmarkStepHandler measures one guarded decision through the full
// HTTP handler stack (mux, JSON decode, guard, JSON encode) without
// socket overhead — the per-request cost floor of osap-serve.
func BenchmarkStepHandler(b *testing.B) {
	for _, scheme := range []string{SchemeND, SchemeAEns, SchemeVEns} {
		b.Run(scheme, func(b *testing.B) {
			arts, err := SyntheticArtifacts("bench", 5, 3)
			if err != nil {
				b.Fatal(err)
			}
			f, err := NewGuardFactory(arts, GuardConfig{})
			if err != nil {
				b.Fatal(err)
			}
			s, err := NewServer(f, Config{})
			if err != nil {
				b.Fatal(err)
			}
			guard, err := f.NewGuard(scheme)
			if err != nil {
				b.Fatal(err)
			}
			sess := newSession("bench", scheme, guard, s.cfg.Now())
			if err := s.table.Put(sess); err != nil {
				b.Fatal(err)
			}
			body, _ := json.Marshal(map[string][]float64{"obs": make([]float64, abr.ObsDim)})
			url := "/v1/sessions/bench/step"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("step: status %d: %s", w.Code, w.Body)
				}
			}
		})
	}
}

// BenchmarkTableGet measures session lookup contention across shard
// counts under parallel load.
func BenchmarkTableGet(b *testing.B) {
	for _, shards := range []int{1, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tb := NewTable(shards, 0)
			const n = 1024
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("s-%d", i)
				if err := tb.Put(newSession(ids[i], SchemeND, nil, time.Now())); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, ok := tb.Get(ids[i&(n-1)]); !ok {
						b.Fail()
					}
					i++
				}
			})
		})
	}
}
