package proto

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"
)

// pipeConn builds a Conn whose writes land in buf and whose reads
// consume from buf — enough to exercise both directions in-process.
func pipeConn(buf *bytes.Buffer) *Conn { return NewConn(buf) }

func TestStepRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := pipeConn(&buf)
	obs := []float64{1.5, -0.0, math.Inf(1), math.NaN(), 1e-300, 42}
	if err := c.WriteStep(63, 7, obs); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeStep {
		t.Fatalf("type %d, want TypeStep", typ)
	}
	if cid, ok := StepCid(payload); !ok || cid != 63 {
		t.Fatalf("StepCid = %d %v, want 63 true", cid, ok)
	}
	got := make([]float64, len(obs))
	cid, seq, err := DecodeStep(payload, got)
	if err != nil {
		t.Fatal(err)
	}
	if cid != 63 || seq != 7 {
		t.Fatalf("cid %d seq %d, want 63 7", cid, seq)
	}
	for i := range obs {
		if math.Float64bits(got[i]) != math.Float64bits(obs[i]) {
			t.Fatalf("obs[%d] = %g (%#x), want %g (%#x) — not bit-identical",
				i, got[i], math.Float64bits(got[i]), obs[i], math.Float64bits(obs[i]))
		}
	}
	// Dimension mismatch must be rejected, not silently truncated.
	if _, _, err := DecodeStep(payload, make([]float64, len(obs)+1)); err == nil {
		t.Fatal("DecodeStep accepted a dimension mismatch")
	}
}

func TestDecisionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := pipeConn(&buf)
	want := Decision{Cid: 1023, Seq: 99, Action: 5, Flags: FlagFallback | FlagDemoted, Step: 1234, Score: -0.625}
	if err := c.WriteDecision(want); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeDecision {
		t.Fatalf("type %d, want TypeDecision", typ)
	}
	got, err := DecodeDecision(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("decision %+v, want %+v", got, want)
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := pipeConn(&buf)
	if err := c.WriteHello(); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.ReadFrame()
	if err != nil || typ != TypeHello {
		t.Fatalf("read hello: type %d err %v", typ, err)
	}
	if err := DecodeHello(payload); err != nil {
		t.Fatal(err)
	}

	want := Welcome{Version: Version, ObsDim: 48, NumActions: 6,
		Dataset: "norway", Schemes: []string{"ND", "A-ensemble", "V-ensemble"}}
	if err := c.WriteWelcome(want); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = c.ReadFrame()
	if err != nil || typ != TypeWelcome {
		t.Fatalf("read welcome: type %d err %v", typ, err)
	}
	got, err := DecodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || got.ObsDim != want.ObsDim ||
		got.NumActions != want.NumActions || got.Dataset != want.Dataset ||
		len(got.Schemes) != len(want.Schemes) {
		t.Fatalf("welcome %+v, want %+v", got, want)
	}
	for i := range want.Schemes {
		if got.Schemes[i] != want.Schemes[i] {
			t.Fatalf("scheme[%d] %q, want %q", i, got.Schemes[i], want.Schemes[i])
		}
	}
}

func TestControlRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	c := pipeConn(&buf)

	if err := c.WriteOpen(5, "A-ensemble"); err != nil {
		t.Fatal(err)
	}
	typ, payload, _ := c.ReadFrame()
	if cid, s, err := DecodeOpen(payload); typ != TypeOpen || err != nil || cid != 5 || s != "A-ensemble" {
		t.Fatalf("open round trip: type %d cid %d %q %v", typ, cid, s, err)
	}

	if err := c.WriteOpened(5, "abc-123"); err != nil {
		t.Fatal(err)
	}
	typ, payload, _ = c.ReadFrame()
	if cid, id, err := DecodeOpened(payload); typ != TypeOpened || err != nil || cid != 5 || id != "abc-123" {
		t.Fatalf("opened round trip: type %d cid %d %q %v", typ, cid, id, err)
	}

	if err := c.WriteError(9, CodeTooMany, "session table full"); err != nil {
		t.Fatal(err)
	}
	typ, payload, _ = c.ReadFrame()
	cid, code, msg, err := DecodeError(payload)
	if typ != TypeError || err != nil || cid != 9 || code != CodeTooMany || msg != "session table full" {
		t.Fatalf("error round trip: type %d cid %d code %d %q %v", typ, cid, code, msg, err)
	}

	// Connection-scoped errors carry the reserved cid.
	if err := c.WriteError(CidConn, CodeBadRequest, "bad frame"); err != nil {
		t.Fatal(err)
	}
	_, payload, _ = c.ReadFrame()
	if cid, _, _, err := DecodeError(payload); err != nil || cid != CidConn {
		t.Fatalf("conn-scoped error: cid %#x %v, want CidConn", cid, err)
	}

	if err := c.WriteSessionControl(TypeClose, 77); err != nil {
		t.Fatal(err)
	}
	typ, payload, _ = c.ReadFrame()
	if cid, err := DecodeCid(payload); typ != TypeClose || err != nil || cid != 77 {
		t.Fatalf("close round trip: type %d cid %d %v", typ, cid, err)
	}

	if err := c.WriteGoAway("draining"); err != nil {
		t.Fatal(err)
	}
	typ, payload, _ = c.ReadFrame()
	if typ != TypeGoAway || string(payload) != "draining" {
		t.Fatalf("goaway round trip: type %d %q", typ, payload)
	}

	if err := c.WriteControl(TypePing, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, _ = c.ReadFrame()
	if typ != TypePing || len(payload) != 0 {
		t.Fatalf("ping round trip: type %d payload %d bytes", typ, len(payload))
	}
}

func TestFrameErrors(t *testing.T) {
	// Oversized frame.
	var buf bytes.Buffer
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, MaxFrame+1)
	buf.Write(hdr)
	if _, _, err := pipeConn(&buf).ReadFrame(); err != ErrFrameTooLarge {
		t.Fatalf("oversized frame: err %v, want ErrFrameTooLarge", err)
	}

	// Zero-length body.
	buf.Reset()
	binary.LittleEndian.PutUint32(hdr, 0)
	buf.Write(hdr)
	if _, _, err := pipeConn(&buf).ReadFrame(); err != ErrShortFrame {
		t.Fatalf("empty frame: err %v, want ErrShortFrame", err)
	}

	// Truncated payload.
	buf.Reset()
	binary.LittleEndian.PutUint32(hdr, 100)
	buf.Write(hdr)
	buf.WriteByte(byte(TypeStep))
	if _, _, err := pipeConn(&buf).ReadFrame(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: err %v, want ErrUnexpectedEOF", err)
	}

	// Hello with the wrong magic / version.
	if err := DecodeHello([]byte("NOPE\x01")); err != ErrBadMagic {
		t.Fatalf("bad magic: err %v", err)
	}
	if err := DecodeHello([]byte("OSAP\x7f")); err != ErrVersion {
		t.Fatalf("bad version: err %v", err)
	}
	if err := DecodeHello([]byte("OSAP")); err != ErrShortFrame {
		t.Fatalf("short hello: err %v", err)
	}

	// Short decision / step / cid / error payloads.
	if _, err := DecodeDecision(make([]byte, 5)); err != ErrShortFrame {
		t.Fatalf("short decision: err %v", err)
	}
	if _, _, err := DecodeStep(make([]byte, 3), make([]float64, 1)); err != ErrShortFrame {
		t.Fatalf("short step: err %v", err)
	}
	if _, err := DecodeCid(make([]byte, 3)); err != ErrShortFrame {
		t.Fatalf("short cid: err %v", err)
	}
	if _, _, _, err := DecodeError(make([]byte, 5)); err != ErrShortFrame {
		t.Fatalf("short error: err %v", err)
	}
	if _, ok := StepCid(make([]byte, 3)); ok {
		t.Fatal("StepCid accepted a 3-byte payload")
	}
}

// TestEncodeZeroAlloc pins the frame encode path: once the write
// buffer is warm, WriteStep and WriteDecision must not allocate.
func TestEncodeZeroAlloc(t *testing.T) {
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{nil, io.Discard})
	obs := make([]float64, 48)
	if err := c.WriteStep(0, 0, obs); err != nil { // warm wbuf
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := c.WriteStep(3, 1, obs); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("WriteStep allocates %.2f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := c.WriteDecision(Decision{Cid: 3, Seq: 1, Action: 2, Step: 3, Score: 4}); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("WriteDecision allocates %.2f/op, want 0", allocs)
	}
}

// TestDecodeZeroAlloc pins the frame decode path: ReadFrame +
// DecodeStep reuse connection buffers once warm.
func TestDecodeZeroAlloc(t *testing.T) {
	const runs = 100
	var enc bytes.Buffer
	w := NewConn(&enc)
	obs := []float64{1, 2, 3, 4, 5, 6}
	for i := 0; i < runs+10; i++ {
		if err := w.WriteStep(uint32(i%7), uint32(i), obs); err != nil {
			t.Fatal(err)
		}
	}
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{bytes.NewReader(enc.Bytes()), io.Discard})
	got := make([]float64, len(obs))
	if _, _, err := c.ReadFrame(); err != nil { // warm rbuf
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(runs, func() {
		_, payload, err := c.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeStep(payload, got); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("ReadFrame+DecodeStep allocates %.2f/op, want 0", allocs)
	}
}

// TestManualFlushCoalesces pins the mux writer contract: with
// ManualFlush on, Write* only appends to the buffered writer and
// nothing reaches the transport until Flush.
func TestManualFlushCoalesces(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	c.ManualFlush()
	obs := make([]float64, 8)
	for cid := uint32(0); cid < 4; cid++ {
		if err := c.WriteStep(cid, 1, obs); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("manual-flush conn wrote %d bytes before Flush", buf.Len())
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewConn(&buf)
	for cid := uint32(0); cid < 4; cid++ {
		typ, payload, err := r.ReadFrame()
		if err != nil || typ != TypeStep {
			t.Fatalf("frame %d: type %d err %v", cid, typ, err)
		}
		got, _, err := DecodeStep(payload, obs)
		if err != nil || got != cid {
			t.Fatalf("frame %d decoded cid %d err %v", cid, got, err)
		}
	}
}
