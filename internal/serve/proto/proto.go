// Package proto is the persistent binary step protocol: a
// length-prefixed framing over one TCP connection that replaces the
// HTTP+JSON round trip on the serving hot path. A step request is one
// small frame (sequence number + raw float64 observations) and its
// decision is another; both encode into connection-owned buffers, so a
// steady-state step does zero heap allocation and no text parsing on
// either side.
//
// Wire format, all integers little-endian:
//
//	frame   := length:u32 body
//	body    := type:u8 payload          (length = len(body) ≤ MaxFrame)
//
// A connection multiplexes many sessions. After the Hello/Welcome
// handshake every session-scoped frame — Open, Opened, Step, Decision,
// Reset, Close, OK, Error — leads its payload with a client-assigned
// channel id (cid), unique per live session on its connection. A
// client may run one connection per session (cid 0 throughout) or park
// hundreds of sessions on one connection; with at most one outstanding
// step per cid the frames of concurrent sessions coalesce into shared
// reads and writes, which is where the persistent protocol's syscall
// advantage over HTTP comes from. Ping/Pong and GoAway are
// connection-scoped. When the server drains it answers further frames
// with GoAway — the binary analogue of 503 + Retry-After — and the
// connection winds down after in-flight decisions are flushed.
package proto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Magic opens every Hello frame; Version is the protocol revision
// negotiated by Hello/Welcome.
const (
	Magic   = "OSAP"
	Version = 1
	// MaxFrame bounds a frame body (type byte + payload); anything
	// larger is a protocol error and the connection is dropped.
	MaxFrame  = 1 << 20
	headerLen = 4
)

// Type tags a frame body. Client→server types are low, server→client
// high, so a misdirected frame is immediately recognizable.
type Type uint8

const (
	TypeHello Type = 1 // magic + version
	TypeOpen  Type = 2 // cid + scheme string
	TypeStep  Type = 3 // cid + seq + observations
	TypeReset Type = 4 // cid; new episode, same session
	TypeClose Type = 5 // cid; delete session, connection stays usable
	TypePing  Type = 6 // keepalive

	TypeWelcome  Type = 16 // version + dims + dataset + schemes
	TypeOpened   Type = 17 // cid + session id
	TypeDecision Type = 18 // cid + seq + action + flags + step + score
	TypePong     Type = 19
	TypeError    Type = 20 // cid + code + message; connection stays usable
	TypeGoAway   Type = 21 // reason; server is draining, connection ends
	TypeOK       Type = 22 // cid; ack for Reset/Close
)

// CidConn marks an Error frame as connection-scoped (handshake or
// framing faults) rather than addressed to one session's channel.
const CidConn = ^uint32(0)

// Decision flag bits.
const (
	FlagFallback = 1 << 0 // default policy acted
	FlagFired    = 1 << 1 // trigger has fired this episode
	FlagDemoted  = 1 << 2 // session serves in degraded mode
)

// Error codes carried by TypeError, mirroring the HTTP front door.
const (
	CodeBadRequest uint16 = 400
	CodeGone       uint16 = 410
	CodeTooMany    uint16 = 429
	CodeDraining   uint16 = 503
)

// Frame-level protocol errors.
var (
	ErrFrameTooLarge = errors.New("proto: frame exceeds MaxFrame")
	ErrShortFrame    = errors.New("proto: frame payload truncated")
	ErrBadMagic      = errors.New("proto: bad hello magic")
	ErrVersion       = errors.New("proto: unsupported protocol version")
)

// Decision is the decoded TypeDecision payload.
type Decision struct {
	Cid    uint32
	Seq    uint32
	Action uint16
	Flags  uint8
	Step   uint32
	Score  float64
}

// Welcome is the decoded TypeWelcome payload.
type Welcome struct {
	Version    uint8
	ObsDim     int
	NumActions int
	Dataset    string
	Schemes    []string
}

// Conn frames one side of a protocol connection. Read payloads and
// write scratch live in connection-owned buffers, reused across
// frames. The read side (ReadFrame) and the write side (the Write*
// methods and Flush) may be owned by different goroutines — a mux
// splits them into a reader and a coalescing writer — but each side is
// single-goroutine.
type Conn struct {
	br     *bufio.Reader
	bw     *bufio.Writer
	manual bool
	hdr    [headerLen]byte
	rbuf   []byte
	wbuf   []byte
}

// NewConn wraps a transport (usually a net.Conn).
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{br: bufio.NewReader(rw), bw: bufio.NewWriter(rw)}
}

// ManualFlush switches the write side from flush-per-frame to
// caller-controlled flushing: Write* methods only append to the write
// buffer and the owner calls Flush when its outbound queue goes idle.
// This is how a mux writer coalesces many sessions' frames into one
// syscall.
func (c *Conn) ManualFlush() { c.manual = true }

// Flush writes out any buffered frames.
func (c *Conn) Flush() error { return c.bw.Flush() }

// ReadFrame reads one frame and returns its type and payload. The
// payload aliases the connection's read buffer — valid until the next
// ReadFrame.
//
//osap:hotpath
func (c *Conn) ReadFrame() (Type, []byte, error) {
	if _, err := io.ReadFull(c.br, c.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(c.hdr[:]))
	if n < 1 {
		return 0, nil, ErrShortFrame
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	if cap(c.rbuf) < n {
		c.rbuf = make([]byte, n)
	}
	b := c.rbuf[:n]
	if _, err := io.ReadFull(c.br, b); err != nil {
		return 0, nil, err
	}
	return Type(b[0]), b[1:], nil
}

// frame reserves the write buffer for a body of n bytes (type byte
// included) and stamps the header; the caller fills b[0:] with the
// body and calls flush.
//
//osap:hotpath
func (c *Conn) frame(t Type, bodyLen int) []byte {
	n := headerLen + bodyLen
	if cap(c.wbuf) < n {
		c.wbuf = make([]byte, n)
	}
	b := c.wbuf[:n]
	binary.LittleEndian.PutUint32(b, uint32(bodyLen))
	b[headerLen] = byte(t)
	return b
}

//osap:hotpath
func (c *Conn) flush(b []byte) error {
	if _, err := c.bw.Write(b); err != nil {
		return err
	}
	if c.manual {
		return nil
	}
	return c.bw.Flush()
}

// WriteStep encodes and sends one step request on channel cid.
//
//osap:hotpath
func (c *Conn) WriteStep(cid, seq uint32, obs []float64) error {
	b := c.frame(TypeStep, 1+4+4+8*len(obs))
	binary.LittleEndian.PutUint32(b[headerLen+1:], cid)
	binary.LittleEndian.PutUint32(b[headerLen+5:], seq)
	off := headerLen + 9
	for _, v := range obs {
		binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
		off += 8
	}
	return c.flush(b)
}

// DecodeStep unpacks a TypeStep payload into a caller-owned
// observation buffer, which fixes the expected dimension.
//
//osap:hotpath
func DecodeStep(payload []byte, obs []float64) (cid, seq uint32, err error) {
	if len(payload) != 8+8*len(obs) {
		return 0, 0, ErrShortFrame
	}
	cid = binary.LittleEndian.Uint32(payload)
	seq = binary.LittleEndian.Uint32(payload[4:])
	off := 8
	for i := range obs {
		obs[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	return cid, seq, nil
}

// StepCid peeks the channel id of a TypeStep (or any session-scoped)
// payload without decoding the rest; used to address error replies for
// frames rejected before full decode.
func StepCid(payload []byte) (uint32, bool) {
	if len(payload) < 4 {
		return 0, false
	}
	return binary.LittleEndian.Uint32(payload), true
}

// WriteDecision encodes and sends one step decision.
//
//osap:hotpath
func (c *Conn) WriteDecision(d Decision) error {
	b := c.frame(TypeDecision, 1+4+4+2+1+4+8)
	binary.LittleEndian.PutUint32(b[headerLen+1:], d.Cid)
	binary.LittleEndian.PutUint32(b[headerLen+5:], d.Seq)
	binary.LittleEndian.PutUint16(b[headerLen+9:], d.Action)
	b[headerLen+11] = d.Flags
	binary.LittleEndian.PutUint32(b[headerLen+12:], d.Step)
	binary.LittleEndian.PutUint64(b[headerLen+16:], math.Float64bits(d.Score))
	return c.flush(b)
}

// DecodeDecision unpacks a TypeDecision payload.
//
//osap:hotpath
func DecodeDecision(payload []byte) (Decision, error) {
	var d Decision
	if len(payload) != 4+4+2+1+4+8 {
		return d, ErrShortFrame
	}
	d.Cid = binary.LittleEndian.Uint32(payload)
	d.Seq = binary.LittleEndian.Uint32(payload[4:])
	d.Action = binary.LittleEndian.Uint16(payload[8:])
	d.Flags = payload[10]
	d.Step = binary.LittleEndian.Uint32(payload[11:])
	d.Score = math.Float64frombits(binary.LittleEndian.Uint64(payload[15:]))
	return d, nil
}

// ---- control frames (cold path) ----

// WriteControl sends a frame with an arbitrary payload (nil for the
// empty control frames: Reset, Close, Ping, Pong, OK).
func (c *Conn) WriteControl(t Type, payload []byte) error {
	b := c.frame(t, 1+len(payload))
	copy(b[headerLen+1:], payload)
	return c.flush(b)
}

// WriteHello sends the client handshake.
func (c *Conn) WriteHello() error {
	b := make([]byte, len(Magic)+1)
	copy(b, Magic)
	b[len(Magic)] = Version
	return c.WriteControl(TypeHello, b)
}

// DecodeHello validates a TypeHello payload.
func DecodeHello(payload []byte) error {
	if len(payload) != len(Magic)+1 {
		return ErrShortFrame
	}
	if string(payload[:len(Magic)]) != Magic {
		return ErrBadMagic
	}
	if payload[len(Magic)] != Version {
		return ErrVersion
	}
	return nil
}

// WriteWelcome sends the server handshake response.
func (c *Conn) WriteWelcome(w Welcome) error {
	b := []byte{Version}
	b = binary.LittleEndian.AppendUint16(b, uint16(w.ObsDim))
	b = binary.LittleEndian.AppendUint16(b, uint16(w.NumActions))
	b = appendString(b, w.Dataset)
	b = append(b, byte(len(w.Schemes)))
	for _, s := range w.Schemes {
		b = appendString(b, s)
	}
	return c.WriteControl(TypeWelcome, b)
}

// DecodeWelcome unpacks a TypeWelcome payload.
func DecodeWelcome(payload []byte) (Welcome, error) {
	var w Welcome
	if len(payload) < 6 {
		return w, ErrShortFrame
	}
	w.Version = payload[0]
	w.ObsDim = int(binary.LittleEndian.Uint16(payload[1:]))
	w.NumActions = int(binary.LittleEndian.Uint16(payload[3:]))
	rest := payload[5:]
	var err error
	if w.Dataset, rest, err = takeString(rest); err != nil {
		return w, err
	}
	if len(rest) < 1 {
		return w, ErrShortFrame
	}
	n := int(rest[0])
	rest = rest[1:]
	w.Schemes = make([]string, 0, n)
	for i := 0; i < n; i++ {
		var s string
		if s, rest, err = takeString(rest); err != nil {
			return w, err
		}
		w.Schemes = append(w.Schemes, s)
	}
	return w, nil
}

// WriteOpen requests a session on channel cid with the given scheme.
func (c *Conn) WriteOpen(cid uint32, scheme string) error {
	b := binary.LittleEndian.AppendUint32(nil, cid)
	return c.WriteControl(TypeOpen, appendString(b, scheme))
}

// DecodeOpen unpacks a TypeOpen payload.
func DecodeOpen(payload []byte) (uint32, string, error) {
	if len(payload) < 4 {
		return 0, "", ErrShortFrame
	}
	cid := binary.LittleEndian.Uint32(payload)
	s, rest, err := takeString(payload[4:])
	if err != nil || len(rest) != 0 {
		return 0, "", ErrShortFrame
	}
	return cid, s, nil
}

// WriteOpened acknowledges Open with the session id.
func (c *Conn) WriteOpened(cid uint32, id string) error {
	b := binary.LittleEndian.AppendUint32(nil, cid)
	return c.WriteControl(TypeOpened, appendString(b, id))
}

// DecodeOpened unpacks a TypeOpened payload.
func DecodeOpened(payload []byte) (uint32, string, error) { return DecodeOpen(payload) }

// WriteSessionControl sends a cid-only session frame (Reset, Close,
// OK).
func (c *Conn) WriteSessionControl(t Type, cid uint32) error {
	return c.WriteControl(t, binary.LittleEndian.AppendUint32(nil, cid))
}

// DecodeCid unpacks a cid-only payload (Reset, Close, OK).
func DecodeCid(payload []byte) (uint32, error) {
	if len(payload) != 4 {
		return 0, ErrShortFrame
	}
	return binary.LittleEndian.Uint32(payload), nil
}

// WriteError reports a recoverable request error addressed to one
// session channel (or CidConn for connection-scoped faults); the
// connection stays open.
func (c *Conn) WriteError(cid uint32, code uint16, msg string) error {
	b := binary.LittleEndian.AppendUint32(nil, cid)
	b = binary.LittleEndian.AppendUint16(b, code)
	return c.WriteControl(TypeError, append(b, msg...))
}

// DecodeError unpacks a TypeError payload.
func DecodeError(payload []byte) (uint32, uint16, string, error) {
	if len(payload) < 6 {
		return 0, 0, "", ErrShortFrame
	}
	return binary.LittleEndian.Uint32(payload),
		binary.LittleEndian.Uint16(payload[4:]),
		string(payload[6:]), nil
}

// WriteGoAway tells the peer the server is draining; the connection
// ends after this frame.
func (c *Conn) WriteGoAway(reason string) error {
	return c.WriteControl(TypeGoAway, []byte(reason))
}

// ErrorString renders a decoded error frame for logs.
func ErrorString(code uint16, msg string) string {
	return fmt.Sprintf("proto: server error %d: %s", code, msg)
}

func appendString(b []byte, s string) []byte {
	if len(s) > 255 {
		s = s[:255]
	}
	b = append(b, byte(len(s)))
	return append(b, s...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 1 {
		return "", nil, ErrShortFrame
	}
	n := int(b[0])
	if len(b) < 1+n {
		return "", nil, ErrShortFrame
	}
	return string(b[1 : 1+n]), b[1+n:], nil
}
