// Package loadgen replays throughput traces as synthetic guard-server
// clients: each client runs a private chunk-level ABR environment
// (internal/abr) over the trace pool and asks a remote osap-serve
// instance for every bitrate decision, exactly the round trip a real
// player would make. It backs `osap-serve -selftest`, the serve
// benchmarks and BENCH_serve.json.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"osap/internal/abr"
	"osap/internal/stats"
	"osap/internal/trace"
)

// Config parameterizes a load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Protocol selects the wire protocol: ProtocolHTTP (default, also
	// "") or ProtocolBinary — the persistent length-prefixed protocol
	// in internal/serve/proto, many sessions multiplexed per
	// connection.
	Protocol string
	// Addr is the host:port of the server's binary listener; required
	// when Protocol is ProtocolBinary (BaseURL is then unused).
	Addr string
	// SessionsPerConn is how many sessions share one multiplexed
	// binary connection (0 → DefaultSessionsPerConn; HTTP ignores it).
	SessionsPerConn int
	// Clients is the number of concurrent sessions to hold open.
	Clients int
	// StepsPerClient bounds each client's decisions (0 = run until the
	// context is canceled or the server drains).
	StepsPerClient int
	// Schemes are assigned round-robin across clients (empty → ND).
	Schemes []string
	// Video is the content each synthetic client streams (required).
	Video *abr.Video
	// Traces is the throughput-trace pool clients replay (required).
	Traces []*trace.Trace
	// Seed derives the per-client RNGs.
	Seed uint64
	// Transport overrides the HTTP transport (nil → a transport sized
	// for Clients concurrent loopback connections).
	Transport http.RoundTripper
	// Backoff, when non-nil, retries 429/503 responses that are not
	// drain signals with jittered exponential backoff, honoring the
	// server's Retry-After hint. Nil keeps the legacy fail-fast
	// behavior.
	Backoff *Backoff
	// ClientDelay, when non-nil, returns an artificial pause inserted
	// before each of client i's requests (the chaos slow-client hook).
	ClientDelay func(i int) time.Duration
	// AbortStep, when non-nil, returns how many steps client i takes
	// before abandoning its session without deleting it (0 = run the
	// full budget) — the viewer who closes the tab.
	AbortStep func(i int) int
	// ScoreSink, when non-nil, receives each client's uncertainty
	// scores (successful, non-demoted HTTP steps only) once, keyed by
	// the artifact version the session bound at admission. Calls are
	// serialized; the slice is owned by the callee. Used by the rollout
	// selftest to build a sequential drift reference per version.
	ScoreSink func(version string, scores []float64)
	// Probation relaxes the demotion-permanence contract check: the
	// server runs with probation enabled, so a demoted session's flag
	// may flip off (recovery) and on again (re-demotion). Transitions
	// are tallied in Result instead of counted as violations; degraded
	// steps must still come from the safe policy.
	Probation bool
	// ExpectDemoted, when non-nil (requires Probation), is the
	// closed-form oracle for the demoted flag: it is consulted after
	// every successful step with the session's 0-based creation index
	// (parsed from the session ID) and the 0-based step index, and any
	// disagreement with the server's reported flag counts as a
	// FlagMismatch. This is the deterministic-recovery-index assertion
	// of the -recovery chaos harness.
	ExpectDemoted func(sessionIdx uint64, step int) bool
	// Adversary, when non-nil, returns client i's multiplicative
	// per-step throughput drift factor: before each step the client
	// scales the throughput history in the observation it REPORTS by
	// the compounded factor (1.001 = +0.1%/step, the slow-poisoning
	// attacker of DESIGN.md §14) while its local environment keeps
	// evolving honestly. Return 0 or 1 for an honest client. HTTP
	// protocol only.
	Adversary func(i int) float64
}

// Backoff shapes the retry schedule for rejected requests: attempt n
// waits jitter(min(Base<<n, Max)), floored by the server's Retry-After
// hint, for at most Retries attempts beyond the first.
type Backoff struct {
	Base    time.Duration // first retry delay (0 → 10ms)
	Max     time.Duration // delay cap (0 → 1s)
	Retries int           // retries per request (0 → 4)
}

func (b *Backoff) maxRetries() int {
	if b.Retries > 0 {
		return b.Retries
	}
	return 4
}

// Result aggregates a load run. A step is "dropped" only when a
// request failed for a reason other than the server's explicit drain
// signal (503 + draining, connection refused after shutdown, or a
// session closed by drain) — with a graceful shutdown this must be 0.
type Result struct {
	SessionsCreated  int64
	SessionsRejected int64 // 429s from admission control
	StepsOK          int64
	StepsDrained     int64 // refused by drain or shutdown (expected)
	StepsDropped     int64 // hard failures (must be 0)
	Fallbacks        int64 // steps served by the default policy
	Retries          int64 // requests retried after a 429/503
	StepsDemoted     int64 // steps answered in degraded mode
	SessionsDemoted  int64 // clients that observed their session demote
	// DemotionViolations counts steps where a session that had reported
	// demoted later served a learned or non-demoted decision. Demotion
	// is permanent by contract, so this must be 0. Under Probation the
	// flag may legitimately flip; the violation then is a degraded step
	// not served by the safe policy.
	DemotionViolations int64
	// Probation-mode recovery stats, tallied from demoted-flag flips:
	// Recoveries counts demoted→live transitions, Redemotions counts
	// repeat live→demoted transitions, SessionsEndDemoted counts
	// sessions whose final step was still demoted, and FlagMismatches
	// counts steps whose demoted flag contradicted Config.ExpectDemoted
	// (must be 0 in a clean -recovery run).
	Recoveries         int64
	Redemotions        int64
	SessionsEndDemoted int64
	FlagMismatches     int64
	// StepsLearned counts steps the server's online-learning trust
	// gate admitted into the experience window (the HTTP "learned"
	// response flag; binary runs leave these zero). AdversarySteps and
	// AdversaryLearned are the tallies for the subset of clients with
	// a drift Adversary configured.
	StepsLearned     int64
	AdversarySteps   int64
	AdversaryLearned int64
	Elapsed          time.Duration
	// VersionCounts tallies sessions by the artifact version reported at
	// creation (HTTP protocol only; the binary Opened frame carries no
	// version, so binary runs leave this empty).
	VersionCounts map[string]int64
	latencies     []time.Duration
	connSetups    []time.Duration
}

// Throughput returns served steps per second over the run.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.StepsOK) / r.Elapsed.Seconds()
}

// LatencyQuantile returns the q-th (0..1) client-observed step latency.
func (r *Result) LatencyQuantile(q float64) time.Duration {
	return quantile(r.latencies, q)
}

// ConnSetupQuantile returns the q-th (0..1) session-establishment
// cost: for the binary protocol, dial + Hello/Welcome + Open/Opened;
// for HTTP, the session-create request. Reported separately from step
// latency so the persistent protocol's amortized advantage is visible
// next to its up-front cost.
func (r *Result) ConnSetupQuantile(q float64) time.Duration {
	return quantile(r.connSetups, q)
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// client is one synthetic viewer.
type client struct {
	cfg    *Config
	http   *http.Client
	scheme string
	rng    *stats.RNG
	delay  time.Duration // pre-request pause (slow-client chaos)

	sessionID string
	env       *abr.Env
	obs       []float64
	mux       *binMux // shared binary connection (Protocol binary only)
	slot      uint32  // this session's channel id on the mux
	seq       uint32
	connSetup time.Duration

	drift    float64   // adversary per-step drift factor (0 = honest)
	driftAcc float64   // compounded drift applied to the reported obs
	obsBuf   []float64 // scratch for the drift-scaled observation

	stepsOK      int64
	drained      int64
	dropped      int64
	fallbacks    int64
	retries      int64
	learned      int64
	demotedSteps int64
	violations   int64
	demoted      bool
	everDemoted  bool
	recoveries   int64
	redemotions  int64
	mismatches   int64
	sessIdx      uint64
	sessIdxOK    bool
	version      string
	scores       []float64
	latencies    []time.Duration
}

type createResponse struct {
	ID         string `json:"id"`
	ObsDim     int    `json:"obs_dim"`
	NumActions int    `json:"num_actions"`
	Version    string `json:"version"`
}

type stepResponse struct {
	Action   int     `json:"action"`
	Fallback bool    `json:"fallback"`
	Demoted  bool    `json:"demoted"`
	Learned  bool    `json:"learned"`
	Score    float64 `json:"score"`
}

// isDrainSignal classifies request failures that a graceful shutdown
// legitimately produces: the server's explicit 503/410, a connection
// refused/reset once the listener is gone, or an idle keep-alive
// connection closed under us. Timeouts and other errors are NOT drain
// signals — they count as dropped steps.
func isDrainSignal(status int, err error) bool {
	if status == http.StatusServiceUnavailable || status == http.StatusGone {
		return true
	}
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "connection refused") ||
		strings.Contains(msg, "connection reset") ||
		strings.Contains(msg, "server closed")
}

// retryHint extracts the server's Retry-After floor and whether the
// rejection is a drain (never retried) rather than transient overload.
// It consumes and closes the response body.
func retryHint(resp *http.Response) (floor time.Duration, draining bool) {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec > 0 {
			floor = time.Duration(sec) * time.Second
		}
	}
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
	resp.Body.Close()
	return floor, bytes.Contains(b, []byte("draining"))
}

// backoffDelay is the jittered exponential schedule: attempt n waits
// uniform[0.5, 1.5) × min(Base<<n, Max), never below the server's
// Retry-After floor.
func (c *client) backoffDelay(attempt int, floor time.Duration) time.Duration {
	base, max := c.cfg.Backoff.Base, c.cfg.Backoff.Max
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	d = time.Duration(float64(d) * (0.5 + c.rng.Float64()))
	if d < floor {
		d = floor
	}
	return d
}

// do sends one POST, retrying 429/503 rejections per the backoff
// config. Drain 503s are never retried. When retries are exhausted the
// final rejection is returned (body already consumed) for the caller's
// usual classification.
func (c *client) do(ctx context.Context, url string, body []byte) (*http.Response, time.Duration, error) {
	for attempt := 0; ; attempt++ {
		if c.delay > 0 {
			time.Sleep(c.delay)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		resp, err := c.http.Do(req)
		lat := time.Since(start)
		if c.cfg.Backoff == nil || err != nil || ctx.Err() != nil ||
			(resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable) {
			return resp, lat, err
		}
		floor, draining := retryHint(resp)
		if draining || attempt >= c.cfg.Backoff.maxRetries() {
			return resp, lat, err
		}
		c.retries++
		time.Sleep(c.backoffDelay(attempt, floor))
	}
}

// create establishes the client's session over the configured
// protocol; step takes one decision round trip. Both report
// HTTP-style status codes so the caller's classification is
// transport-agnostic.
func (c *client) create(ctx context.Context) (int, error) {
	if c.cfg.Protocol == ProtocolBinary {
		return c.createBinary(ctx)
	}
	return c.createHTTP(ctx)
}

func (c *client) step(ctx context.Context) bool {
	if c.cfg.Protocol == ProtocolBinary {
		return c.stepBinary(ctx)
	}
	return c.stepHTTP(ctx)
}

func (c *client) createHTTP(ctx context.Context) (int, error) {
	body, _ := json.Marshal(map[string]string{"scheme": c.scheme})
	start := time.Now()
	resp, _, err := c.do(ctx, c.cfg.BaseURL+"/v1/sessions", body)
	if err != nil {
		return 0, err
	}
	c.connSetup = time.Since(start)
	defer drainBody(resp)
	if resp.StatusCode != http.StatusCreated {
		return resp.StatusCode, fmt.Errorf("create: status %s", resp.Status)
	}
	var cr createResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return resp.StatusCode, err
	}
	c.sessionID = cr.ID
	c.version = cr.Version
	return resp.StatusCode, nil
}

// stepHTTP posts the current observation and advances the local env
// with the returned action.
func (c *client) stepHTTP(ctx context.Context) (ok bool) {
	obs := c.obs
	if c.drift != 0 {
		// Adversarial drift: compound the factor and misreport the
		// throughput history, leaving the honest local env untouched.
		c.driftAcc *= c.drift
		c.obsBuf = append(c.obsBuf[:0], c.obs...)
		abr.ScaleThroughputHistory(c.obsBuf, c.driftAcc)
		obs = c.obsBuf
	}
	body, err := json.Marshal(map[string][]float64{"obs": obs})
	if err != nil {
		c.dropped++
		return false
	}
	resp, lat, err := c.do(ctx, c.cfg.BaseURL+"/v1/sessions/"+c.sessionID+"/step", body)
	status := 0
	if resp != nil {
		status = resp.StatusCode
		defer drainBody(resp)
	}
	if err != nil || status != http.StatusOK {
		if ctx.Err() != nil || isDrainSignal(status, err) {
			c.drained++
		} else {
			c.dropped++
		}
		return false
	}
	var sr stepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		c.dropped++
		return false
	}
	stepIdx := c.stepsOK
	c.stepsOK++
	c.latencies = append(c.latencies, lat)
	if sr.Fallback {
		c.fallbacks++
	}
	if sr.Learned {
		c.learned++
	}
	c.noteStepFlags(sr.Demoted, sr.Fallback, stepIdx)
	if !sr.Demoted && c.cfg.ScoreSink != nil {
		c.scores = append(c.scores, sr.Score)
	}
	next, _, done := c.env.Step(sr.Action)
	if done {
		c.obs = c.env.Reset(c.rng)
	} else {
		c.obs = next
	}
	return true
}

// noteStepFlags applies the demotion-contract bookkeeping shared by
// both transports to one successful step's demoted/fallback flags.
//
// Without Probation, demotion is permanent by contract: once the
// server reports this session demoted, every later decision must still
// be demoted and from the safe policy. With Probation the flag may
// flip — off at a re-admission, on again at a re-demotion — so the
// transitions become the recovery tallies, the remaining invariant is
// that degraded steps come from the safe policy, and (when configured)
// every flag value is checked against the ExpectDemoted oracle.
func (c *client) noteStepFlags(demoted, fallback bool, stepIdx int64) {
	if !c.cfg.Probation {
		if c.demoted && (!demoted || !fallback) {
			c.violations++
		}
		if demoted {
			c.demoted = true
			c.everDemoted = true
			c.demotedSteps++
		}
		return
	}
	if demoted && !fallback {
		c.violations++
	}
	switch {
	case demoted && !c.demoted:
		if c.everDemoted {
			c.redemotions++
		}
		c.everDemoted = true
	case !demoted && c.demoted:
		c.recoveries++
	}
	if demoted {
		c.demotedSteps++
	}
	if c.cfg.ExpectDemoted != nil && c.sessIdxOK &&
		demoted != c.cfg.ExpectDemoted(c.sessIdx, int(stepIdx)) {
		c.mismatches++
	}
	c.demoted = demoted
}

// sessionIndex recovers the 0-based creation index from a server
// session ID ("salt-idx" with idx the hex creation counter from 1).
func sessionIndex(id string) (uint64, bool) {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0, false
	}
	v, err := strconv.ParseUint(id[i+1:], 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return v - 1, true
}

func drainBody(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck
	resp.Body.Close()
}

// Run drives cfg.Clients concurrent synthetic viewers until each has
// taken StepsPerClient decisions, the context is canceled, or the
// server drains. It returns aggregate counts and the merged, sorted
// per-step latencies.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	switch cfg.Protocol {
	case "", ProtocolHTTP:
		if cfg.BaseURL == "" {
			return nil, fmt.Errorf("loadgen: BaseURL is required for the HTTP protocol")
		}
	case ProtocolBinary:
		if cfg.Addr == "" {
			return nil, fmt.Errorf("loadgen: Addr is required for the binary protocol")
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown protocol %q", cfg.Protocol)
	}
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("loadgen: Clients must be positive")
	}
	if cfg.Video == nil || len(cfg.Traces) == 0 {
		return nil, fmt.Errorf("loadgen: Video and Traces are required")
	}
	rt := cfg.Transport
	if rt == nil {
		rt = &http.Transport{
			MaxIdleConns:        cfg.Clients + 16,
			MaxIdleConnsPerHost: cfg.Clients + 16,
			IdleConnTimeout:     30 * time.Second,
		}
	}
	httpClient := &http.Client{Transport: rt, Timeout: 30 * time.Second}
	schemes := cfg.Schemes
	if len(schemes) == 0 {
		schemes = []string{"ND"}
	}

	// Binary transport: sessions share multiplexed connections in
	// groups of SessionsPerConn; group i/k rides mux[i/k] on slot i%k.
	var muxes []*binMux
	perConn := 0
	if cfg.Protocol == ProtocolBinary {
		perConn = cfg.SessionsPerConn
		if perConn <= 0 {
			perConn = DefaultSessionsPerConn
		}
		if perConn > cfg.Clients {
			perConn = cfg.Clients
		}
		muxes = make([]*binMux, (cfg.Clients+perConn-1)/perConn)
		for i := range muxes {
			slots := perConn
			if rem := cfg.Clients - i*perConn; rem < slots {
				slots = rem
			}
			muxes[i] = newBinMux(&cfg, slots)
		}
	}

	res := &Result{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var created, rejected atomic.Int64
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &client{
				cfg:    &cfg,
				http:   httpClient,
				scheme: schemes[i%len(schemes)],
				rng:    stats.NewRNG(cfg.Seed ^ (uint64(i)*0x9E3779B97F4A7C15 + 1)),
			}
			if muxes != nil {
				c.mux = muxes[i/perConn]
				c.slot = uint32(i % perConn)
			}
			if cfg.ClientDelay != nil {
				c.delay = cfg.ClientDelay(i)
			}
			if cfg.Adversary != nil {
				if f := cfg.Adversary(i); f > 0 && f != 1 {
					c.drift = f
					c.driftAcc = 1
				}
			}
			envCfg := abr.DefaultEnvConfig(cfg.Video, cfg.Traces)
			env, err := abr.NewEnv(envCfg)
			if err != nil {
				mu.Lock()
				res.StepsDropped++
				mu.Unlock()
				return
			}
			c.env = env
			c.obs = env.Reset(c.rng)

			status, err := c.create(ctx)
			if err != nil {
				if status == http.StatusTooManyRequests {
					rejected.Add(1)
				} else if !isDrainSignal(status, err) && ctx.Err() == nil {
					mu.Lock()
					res.StepsDropped++ // count a failed create as a drop
					mu.Unlock()
				}
				return
			}
			created.Add(1)
			if cfg.ExpectDemoted != nil {
				c.sessIdx, c.sessIdxOK = sessionIndex(c.sessionID)
				if !c.sessIdxOK {
					c.mismatches++ // oracle unusable: surface it, don't skip silently
				}
			}
			abort := 0
			if cfg.AbortStep != nil {
				abort = cfg.AbortStep(i)
			}
			for n := 0; cfg.StepsPerClient == 0 || n < cfg.StepsPerClient; n++ {
				if abort > 0 && n >= abort {
					break // abandon the session, never DELETE it
				}
				if ctx.Err() != nil {
					break
				}
				if !c.step(ctx) {
					break
				}
			}
			mu.Lock()
			res.StepsOK += c.stepsOK
			res.StepsDrained += c.drained
			res.StepsDropped += c.dropped
			res.Fallbacks += c.fallbacks
			res.Retries += c.retries
			res.StepsDemoted += c.demotedSteps
			res.DemotionViolations += c.violations
			res.Recoveries += c.recoveries
			res.Redemotions += c.redemotions
			res.FlagMismatches += c.mismatches
			res.StepsLearned += c.learned
			if c.drift != 0 {
				res.AdversarySteps += c.stepsOK
				res.AdversaryLearned += c.learned
			}
			if c.everDemoted {
				res.SessionsDemoted++
			}
			if c.demoted {
				res.SessionsEndDemoted++
			}
			if c.version != "" {
				if res.VersionCounts == nil {
					res.VersionCounts = make(map[string]int64)
				}
				res.VersionCounts[c.version]++
			}
			if cfg.ScoreSink != nil && len(c.scores) > 0 {
				cfg.ScoreSink(c.version, c.scores)
			}
			res.latencies = append(res.latencies, c.latencies...)
			res.connSetups = append(res.connSetups, c.connSetup)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, m := range muxes {
		m.close()
	}
	res.Elapsed = time.Since(start)
	res.SessionsCreated = created.Load()
	res.SessionsRejected = rejected.Load()
	sort.Slice(res.latencies, func(a, b int) bool { return res.latencies[a] < res.latencies[b] })
	sort.Slice(res.connSetups, func(a, b int) bool { return res.connSetups[a] < res.connSetups[b] })
	return res, nil
}
