package loadgen_test

import (
	"context"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"osap/internal/abr"
	"osap/internal/serve"
	"osap/internal/serve/loadgen"
	"osap/internal/stats"
	"osap/internal/trace"
)

func testTraces(t *testing.T, n int) []*trace.Trace {
	t.Helper()
	gen := trace.Norway3G()
	rng := stats.NewRNG(99)
	out := make([]*trace.Trace, n)
	for i := range out {
		out[i] = gen.Generate(rng, 120)
	}
	return out
}

func startServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	arts, err := serve.SyntheticArtifacts("loadgen-test", 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := serve.NewGuardFactory(arts, serve.GuardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.NewServer(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestLoadgenBoundedRun(t *testing.T) {
	s, ts := startServer(t, serve.Config{})
	video := abr.SyntheticVideo(1, 24, 4)
	res, err := loadgen.Run(t.Context(), loadgen.Config{
		BaseURL:        ts.URL,
		Clients:        20,
		StepsPerClient: 10,
		Schemes:        []string{serve.SchemeND, serve.SchemeAEns, serve.SchemeVEns},
		Video:          video,
		Traces:         testTraces(t, 4),
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SessionsCreated != 20 {
		t.Errorf("sessions created = %d, want 20", res.SessionsCreated)
	}
	if res.StepsOK != 200 {
		t.Errorf("steps ok = %d, want 200", res.StepsOK)
	}
	if res.StepsDropped != 0 {
		t.Errorf("steps dropped = %d, want 0", res.StepsDropped)
	}
	if got := s.Metrics().Decisions.Load(); got != 200 {
		t.Errorf("server decisions = %d, want 200", got)
	}
	if res.Throughput() <= 0 {
		t.Error("throughput not measured")
	}
	if p50, p99 := res.LatencyQuantile(0.5), res.LatencyQuantile(0.99); p50 <= 0 || p99 < p50 {
		t.Errorf("latency quantiles inconsistent: p50=%v p99=%v", p50, p99)
	}
}

func TestLoadgenAdmissionRejection(t *testing.T) {
	_, ts := startServer(t, serve.Config{MaxSessions: 5})
	res, err := loadgen.Run(t.Context(), loadgen.Config{
		BaseURL:        ts.URL,
		Clients:        12,
		StepsPerClient: 3,
		Video:          abr.SyntheticVideo(1, 24, 4),
		Traces:         testTraces(t, 2),
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SessionsCreated != 5 {
		t.Errorf("sessions created = %d, want 5 (cap)", res.SessionsCreated)
	}
	if res.SessionsRejected != 7 {
		t.Errorf("sessions rejected = %d, want 7", res.SessionsRejected)
	}
	if res.StepsDropped != 0 {
		t.Errorf("steps dropped = %d, want 0", res.StepsDropped)
	}
}

// TestLoadgenGracefulDrainDropsNothing is the small-scale version of
// the -selftest acceptance gate: clients step in an unbounded loop,
// the server drains mid-flight, and every step must either succeed or
// be refused by an explicit drain signal — never dropped.
func TestLoadgenGracefulDrainDropsNothing(t *testing.T) {
	s, ts := startServer(t, serve.Config{})
	done := make(chan *loadgen.Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL: ts.URL,
			Clients: 30,
			Video:   abr.SyntheticVideo(1, 24, 4),
			Traces:  testTraces(t, 2),
			Seed:    7,
		})
		errc <- err
		done <- res
	}()

	// Let the fleet reach steady state, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Decisions.Load() < 300 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Drain(t.Context(), io.Discard); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.StepsOK < 300 {
		t.Errorf("steps ok = %d, want ≥ 300 before drain", res.StepsOK)
	}
	if res.StepsDropped != 0 {
		t.Errorf("steps dropped across graceful drain = %d, want 0", res.StepsDropped)
	}
	if res.StepsDrained == 0 {
		t.Error("no drain signals observed — drain raced past the fleet?")
	}
	// Server-side accounting agrees: every accepted step was served.
	if got := s.Metrics().Decisions.Load(); int64(got) != res.StepsOK {
		t.Errorf("server served %d steps, clients observed %d", got, res.StepsOK)
	}
}
