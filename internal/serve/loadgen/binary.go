package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"osap/internal/serve/proto"
)

// Protocol values for Config.Protocol.
const (
	ProtocolHTTP   = "http"
	ProtocolBinary = "binary"
)

// DefaultSessionsPerConn is how many synthetic viewers share one
// multiplexed binary connection when Config.SessionsPerConn is zero.
// 512 keeps a 1000-client fleet on two connections — wide enough that
// nearly every step and decision frame rides a shared syscall, which
// is where the binary transport's throughput headroom comes from.
const DefaultSessionsPerConn = 512

var errDraining = errors.New("loadgen: server draining")

// muxReq is one session's outbound frame, queued to the mux writer.
type muxReq struct {
	typ    proto.Type // Open or Step
	cid    uint32
	seq    uint32
	obs    []float64 // owned by the session until its reply arrives
	scheme string
}

// muxReply is one decoded server frame routed back to a session.
type muxReply struct {
	typ  proto.Type // Decision, Error, OK, or Opened
	dec  proto.Decision
	code uint16
	msg  string
	id   string
}

// binMux is one shared binary connection carrying many sessions. A
// writer goroutine coalesces queued frames into shared flushes; a
// reader goroutine routes replies to slot-indexed channels. Sessions
// have at most one outstanding request each, so every reply channel is
// buffered one deep and the reader never blocks on a slot.
type binMux struct {
	cfg     *Config
	once    sync.Once
	dialErr error

	nc      net.Conn
	pc      *proto.Conn
	out     chan muxReq
	replies []chan muxReply

	failOnce sync.Once
	deadErr  error // written before dead closes; read after observing it
	dead     chan struct{}
}

func newBinMux(cfg *Config, slots int) *binMux {
	m := &binMux{
		cfg:     cfg,
		out:     make(chan muxReq, slots),
		replies: make([]chan muxReply, slots),
		dead:    make(chan struct{}),
	}
	for i := range m.replies {
		m.replies[i] = make(chan muxReply, 1)
	}
	return m
}

// fail marks the connection dead exactly once and unblocks everyone.
func (m *binMux) fail(err error) {
	m.failOnce.Do(func() {
		m.deadErr = err
		close(m.dead)
		if m.nc != nil {
			m.nc.Close() //nolint:errcheck
		}
	})
}

func (m *binMux) close() { m.fail(net.ErrClosed) }

// ensureDial dials and handshakes the shared connection on first use;
// every session in the group shares the outcome.
func (m *binMux) ensureDial(ctx context.Context) error {
	m.once.Do(func() { m.dialErr = m.dial(ctx) })
	return m.dialErr
}

func (m *binMux) dial(ctx context.Context) error {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", m.cfg.Addr)
	if err != nil {
		return err
	}
	pc := proto.NewConn(nc)
	if err := pc.WriteHello(); err != nil {
		nc.Close() //nolint:errcheck
		return err
	}
	typ, payload, err := pc.ReadFrame()
	if err != nil {
		nc.Close() //nolint:errcheck
		return err
	}
	switch typ {
	case proto.TypeWelcome:
		if _, err := proto.DecodeWelcome(payload); err != nil {
			nc.Close() //nolint:errcheck
			return err
		}
	case proto.TypeGoAway:
		nc.Close() //nolint:errcheck
		return errDraining
	default:
		nc.Close() //nolint:errcheck
		return fmt.Errorf("loadgen: handshake frame type %d", typ)
	}
	pc.ManualFlush()
	m.nc, m.pc = nc, pc
	go m.writer()
	go m.reader()
	// A canceled run must unblock sessions parked in the mux.
	context.AfterFunc(ctx, func() { m.fail(ctx.Err()) }) //nolint:errcheck
	return nil
}

// writer encodes queued requests, flushing when the queue goes idle —
// the steps of many sessions leave in one syscall.
func (m *binMux) writer() {
	for {
		var req muxReq
		select {
		case <-m.dead:
			return
		case req = <-m.out:
		}
		if !m.writeReq(req) {
			return
		}
		for more := true; more; {
			select {
			case req = <-m.out:
				if !m.writeReq(req) {
					return
				}
			default:
				more = false
			}
		}
		if err := m.pc.Flush(); err != nil {
			m.fail(err)
			return
		}
	}
}

func (m *binMux) writeReq(req muxReq) bool {
	var err error
	switch req.typ {
	case proto.TypeOpen:
		err = m.pc.WriteOpen(req.cid, req.scheme)
	case proto.TypeStep:
		err = m.pc.WriteStep(req.cid, req.seq, req.obs)
	}
	if err != nil {
		m.fail(err)
		return false
	}
	return true
}

// reader decodes server frames and routes session-scoped replies to
// their slot. GoAway and connection-scoped errors kill the mux; every
// parked session observes the death through the dead channel.
func (m *binMux) reader() {
	for {
		typ, payload, err := m.pc.ReadFrame()
		if err != nil {
			m.fail(err)
			return
		}
		switch typ {
		case proto.TypeDecision:
			d, err := proto.DecodeDecision(payload)
			if err != nil || int(d.Cid) >= len(m.replies) {
				m.fail(fmt.Errorf("loadgen: bad decision frame: %v", err))
				return
			}
			m.replies[d.Cid] <- muxReply{typ: typ, dec: d}
		case proto.TypeOpened:
			cid, id, err := proto.DecodeOpened(payload)
			if err != nil || int(cid) >= len(m.replies) {
				m.fail(fmt.Errorf("loadgen: bad opened frame: %v", err))
				return
			}
			m.replies[cid] <- muxReply{typ: typ, id: id}
		case proto.TypeError:
			cid, code, msg, err := proto.DecodeError(payload)
			if err != nil {
				m.fail(err)
				return
			}
			if cid == proto.CidConn || int(cid) >= len(m.replies) {
				m.fail(fmt.Errorf("loadgen: %s", proto.ErrorString(code, msg)))
				return
			}
			m.replies[cid] <- muxReply{typ: typ, code: code, msg: msg}
		case proto.TypeOK:
			cid, err := proto.DecodeCid(payload)
			if err != nil || int(cid) >= len(m.replies) {
				m.fail(fmt.Errorf("loadgen: bad ok frame: %v", err))
				return
			}
			m.replies[cid] <- muxReply{typ: typ}
		case proto.TypeGoAway:
			m.fail(errDraining)
			return
		case proto.TypePong:
			// keepalive; nothing to route
		default:
			m.fail(fmt.Errorf("loadgen: unexpected frame type %d", typ))
			return
		}
	}
}

// send queues one request, giving up if the mux dies first.
func (m *binMux) send(req muxReq) bool {
	select {
	case m.out <- req:
		return true
	case <-m.dead:
		return false
	}
}

// recv waits for the slot's reply or the mux's death.
func (m *binMux) recv(slot uint32) (muxReply, bool) {
	select {
	case rep := <-m.replies[slot]:
		return rep, true
	case <-m.dead:
		// A reply racing the death notice still counts.
		select {
		case rep := <-m.replies[slot]:
			return rep, true
		default:
			return muxReply{}, false
		}
	}
}

// classifyMuxDeath books a step that failed because the shared
// connection died: a drain (GoAway, canceled run, reset by shutdown)
// is expected, anything else is a drop.
func (c *client) classifyMuxDeath(ctx context.Context) {
	err := c.mux.deadErr
	if ctx.Err() != nil || errors.Is(err, errDraining) || isDrainSignal(0, err) {
		c.drained++
	} else {
		c.dropped++
	}
}

// createBinary opens this session's channel on the shared mux,
// retrying injected-overload rejections per the backoff config — the
// binary analogue of the HTTP create path. The returned status reuses
// HTTP codes so Run's classification is transport-agnostic.
func (c *client) createBinary(ctx context.Context) (int, error) {
	start := time.Now()
	if err := c.mux.ensureDial(ctx); err != nil {
		if errors.Is(err, errDraining) {
			return http.StatusServiceUnavailable, err
		}
		return 0, err
	}
	for attempt := 0; ; attempt++ {
		if c.delay > 0 {
			time.Sleep(c.delay)
		}
		if !c.mux.send(muxReq{typ: proto.TypeOpen, cid: c.slot, scheme: c.scheme}) {
			return http.StatusServiceUnavailable, errDraining
		}
		rep, ok := c.mux.recv(c.slot)
		if !ok {
			return http.StatusServiceUnavailable, errDraining
		}
		switch rep.typ {
		case proto.TypeOpened:
			c.sessionID = rep.id
			c.connSetup = time.Since(start)
			return http.StatusCreated, nil
		case proto.TypeError:
			retryable := rep.code == proto.CodeTooMany ||
				(rep.code == proto.CodeDraining && !strings.Contains(rep.msg, "draining"))
			if retryable && c.cfg.Backoff != nil && attempt < c.cfg.Backoff.maxRetries() {
				c.retries++
				time.Sleep(c.backoffDelay(attempt, 0))
				continue
			}
			return int(rep.code), fmt.Errorf("loadgen: open: %s", proto.ErrorString(rep.code, rep.msg))
		default:
			return 0, fmt.Errorf("loadgen: open: reply type %d", rep.typ)
		}
	}
}

// stepBinary sends one step frame through the mux and advances the
// local env with the returned action — the binary analogue of the HTTP
// step path, including the demotion-permanence contract check and
// backoff on injected overload.
func (c *client) stepBinary(ctx context.Context) bool {
	for attempt := 0; ; attempt++ {
		if c.delay > 0 {
			time.Sleep(c.delay)
		}
		c.seq++
		start := time.Now()
		if !c.mux.send(muxReq{typ: proto.TypeStep, cid: c.slot, seq: c.seq, obs: c.obs}) {
			c.classifyMuxDeath(ctx)
			return false
		}
		rep, ok := c.mux.recv(c.slot)
		lat := time.Since(start)
		if !ok {
			c.classifyMuxDeath(ctx)
			return false
		}
		switch rep.typ {
		case proto.TypeDecision:
			d := rep.dec
			if d.Seq != c.seq {
				c.dropped++
				return false
			}
			stepIdx := c.stepsOK
			c.stepsOK++
			c.latencies = append(c.latencies, lat)
			fallback := d.Flags&proto.FlagFallback != 0
			demoted := d.Flags&proto.FlagDemoted != 0
			if fallback {
				c.fallbacks++
			}
			c.noteStepFlags(demoted, fallback, stepIdx)
			next, _, done := c.env.Step(int(d.Action))
			if done {
				c.obs = c.env.Reset(c.rng)
			} else {
				c.obs = next
			}
			return true
		case proto.TypeError:
			// Injected overload (503 without "draining") is retried just
			// like its HTTP twin; real drains and closed sessions stop
			// the client gracefully.
			if rep.code == proto.CodeDraining && !strings.Contains(rep.msg, "draining") &&
				c.cfg.Backoff != nil && attempt < c.cfg.Backoff.maxRetries() {
				c.retries++
				c.seq-- // the rejected step was never served
				time.Sleep(c.backoffDelay(attempt, 0))
				continue
			}
			if isDrainSignal(int(rep.code), nil) {
				c.drained++
			} else {
				c.dropped++
			}
			return false
		default:
			c.dropped++
			return false
		}
	}
}
