// Package chaos is the repo's deterministic fault-injection framework:
// the systems-layer counterpart of the paper's uncertainty injection.
// The paper asks "what happens when the learned component meets inputs
// it was not trained for?"; this package asks the same question of the
// serving stack itself — what happens when inference panics, a NaN
// leaks out of a workspace, an artifact file loses a bit, the server
// is overloaded, or a client stalls mid-transfer — and lets the
// selftest harness (`osap-serve -chaos`) prove the answer is "degrade
// to the safe policy, never crash, never drop a step".
//
// Everything is derived from a seed by stateless hashing, so a fault
// schedule is a pure function of (seed, index): two runs with the same
// seed inject exactly the same faults, and assertions can be computed
// in closed form (FaultedSessions, ExpectedSteps) instead of sampled.
//
// Production builds pay zero cost: the serving stack never imports
// this package. Injection happens behind two small seams — the
// serve.Config.WrapGuard hook (one nil check at session creation) and
// an optional http.Handler middleware — both absent from production
// wiring.
package chaos

import (
	"fmt"
	"time"

	"osap/internal/core"
)

// Kind enumerates the injectable per-session inference faults.
type Kind uint8

const (
	// None marks a clean session.
	None Kind = iota
	// PanicObserve panics inside Signal.Observe — a crash anywhere in
	// the per-step inference stack (nn workspaces, OC-SVM kernels,
	// ensemble bookkeeping all run under it).
	PanicObserve
	// NaNScore returns NaN from Signal.Observe — a poisoned inference
	// output reaching the guard.
	NaNScore
	// InfScore returns +Inf from Signal.Observe.
	InfScore
)

// String names the fault kind for logs.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case PanicObserve:
		return "panic"
	case NaNScore:
		return "nan"
	case InfScore:
		return "inf"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// SessionFault schedules one demoting fault within a session's step
// stream. Step is the 0-based guard decision at which it fires.
type SessionFault struct {
	Kind Kind
	Step int
}

// SessionPlan is everything the schedule injects into one session:
// at most one demoting fault, plus optional recurring latency spikes
// (sleep SpikeDelay on every step ≡ SpikePhase mod SpikeEvery).
type SessionPlan struct {
	Fault      SessionFault
	SpikeEvery int
	SpikePhase int
	SpikeDelay time.Duration
}

// Clean reports whether the plan injects nothing.
func (p SessionPlan) Clean() bool { return p.Fault.Kind == None && p.SpikeEvery == 0 }

// ClientPlan is the client-side misbehavior assigned to one loadgen
// client: an artificial pause before every request (slow client), and
// an early abandonment point (the viewer closes the tab without
// deleting its session).
type ClientPlan struct {
	SlowDelay time.Duration
	AbortStep int
}

// Config parameterizes a Schedule. All "Every" knobs are 1-in-N rates
// (0 disables that fault class); step bounds are inclusive.
type Config struct {
	// Seed derives the entire schedule.
	Seed uint64

	// FaultEvery gives 1 in N sessions a demoting inference fault
	// (kind cycled among panic/NaN/Inf) at a step drawn uniformly from
	// [FaultStepMin, FaultStepMax].
	FaultEvery   int
	FaultStepMin int
	FaultStepMax int

	// SpikeSessionEvery gives 1 in N sessions recurring latency spikes
	// of SpikeDelay on every SpikeStepEvery-th step.
	SpikeSessionEvery int
	SpikeStepEvery    int
	SpikeDelay        time.Duration

	// RejectEvery makes the HTTP middleware reject 1 in N requests
	// with an injected 503 + Retry-After (overload); DelayEvery makes
	// it stall 1 in N requests by Delay before forwarding.
	RejectEvery int
	DelayEvery  int
	Delay       time.Duration

	// SlowClientEvery marks 1 in N clients slow (SlowClientDelay pause
	// before every request); AbortEvery makes 1 in N clients abandon
	// their session after a step drawn from [AbortStepMin,
	// AbortStepMax].
	SlowClientEvery int
	SlowClientDelay time.Duration
	AbortEvery      int
	AbortStepMin    int
	AbortStepMax    int
}

// Validate checks rate/bound consistency. Beyond well-formedness it
// enforces the invariant the exact-demotion assertion rests on: every
// demoting fault must fire before any client can abort, so a faulted
// session is always demoted before its client stops stepping.
func (c Config) Validate() error {
	if c.FaultEvery < 0 || c.SpikeSessionEvery < 0 || c.RejectEvery < 0 ||
		c.DelayEvery < 0 || c.SlowClientEvery < 0 || c.AbortEvery < 0 {
		return fmt.Errorf("chaos: negative 1-in-N rate")
	}
	if c.FaultEvery > 0 {
		if c.FaultStepMin < 0 || c.FaultStepMax < c.FaultStepMin {
			return fmt.Errorf("chaos: fault step range [%d, %d] invalid", c.FaultStepMin, c.FaultStepMax)
		}
	}
	if c.SpikeSessionEvery > 0 && c.SpikeStepEvery < 1 {
		return fmt.Errorf("chaos: SpikeStepEvery %d < 1", c.SpikeStepEvery)
	}
	if c.AbortEvery > 0 {
		if c.AbortStepMin < 1 || c.AbortStepMax < c.AbortStepMin {
			return fmt.Errorf("chaos: abort step range [%d, %d] invalid", c.AbortStepMin, c.AbortStepMax)
		}
		if c.FaultEvery > 0 && c.FaultStepMax >= c.AbortStepMin {
			return fmt.Errorf("chaos: fault steps reach %d but clients may abort at %d; faults must fire first",
				c.FaultStepMax, c.AbortStepMin)
		}
	}
	return nil
}

// ServeScript is the scripted schedule behind `osap-serve -chaos`:
// 1 in 8 sessions suffers a demoting inference fault in the first half
// of its life, 1 in 5 gets periodic latency spikes, roughly 2% of
// requests are rejected with an injected 503 and 2% are delayed, 1 in
// 7 clients is slow, and 1 in 9 abandons its session in the final
// quarter of the run. Fault steps stay strictly below every abort
// step, so a clean run demotes exactly the faulted sessions.
func ServeScript(seed uint64, stepsPerClient int) Config {
	if stepsPerClient < 8 {
		stepsPerClient = 8
	}
	return Config{
		Seed:         seed,
		FaultEvery:   8,
		FaultStepMin: 2,
		FaultStepMax: stepsPerClient / 2,

		SpikeSessionEvery: 5,
		SpikeStepEvery:    8,
		SpikeDelay:        2 * time.Millisecond,

		RejectEvery: 53,
		DelayEvery:  47,
		Delay:       3 * time.Millisecond,

		SlowClientEvery: 7,
		SlowClientDelay: time.Millisecond,
		AbortEvery:      9,
		AbortStepMin:    stepsPerClient/2 + 1,
		AbortStepMax:    stepsPerClient,
	}
}

// Schedule is a validated, immutable fault schedule. Safe for
// concurrent use: every lookup is a pure hash of (seed, index).
type Schedule struct {
	cfg Config
}

// NewSchedule validates cfg and wraps it.
func NewSchedule(cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Schedule{cfg: cfg}, nil
}

// Config returns the schedule's configuration.
func (s *Schedule) Config() Config { return s.cfg }

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed bijection used to derive every schedule decision
// statelessly.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Independent decision streams, so e.g. "is this session faulted" and
// "which kind" are uncorrelated draws.
const (
	saltFault     = 0xFA01
	saltKind      = 0xFA02
	saltStep      = 0xFA03
	saltSpike     = 0xFA04
	saltPhase     = 0xFA05
	saltSlow      = 0xC101
	saltAbort     = 0xC102
	saltAbortStep = 0xC103
)

func (s *Schedule) draw(salt, idx uint64) uint64 {
	return splitmix64(splitmix64(idx+1) ^ s.cfg.Seed ^ salt)
}

func oneIn(n int, draw uint64) bool {
	return n > 0 && draw%uint64(n) == 0
}

// SessionPlan returns the faults injected into the idx-th created
// session (0-based creation order).
func (s *Schedule) SessionPlan(idx uint64) SessionPlan {
	c := s.cfg
	var p SessionPlan
	if oneIn(c.FaultEvery, s.draw(saltFault, idx)) {
		kinds := [3]Kind{PanicObserve, NaNScore, InfScore}
		p.Fault.Kind = kinds[s.draw(saltKind, idx)%3]
		span := uint64(c.FaultStepMax - c.FaultStepMin + 1)
		p.Fault.Step = c.FaultStepMin + int(s.draw(saltStep, idx)%span)
	}
	if oneIn(c.SpikeSessionEvery, s.draw(saltSpike, idx)) {
		p.SpikeEvery = c.SpikeStepEvery
		p.SpikePhase = int(s.draw(saltPhase, idx) % uint64(c.SpikeStepEvery))
		p.SpikeDelay = c.SpikeDelay
	}
	return p
}

// ClientPlan returns the misbehavior assigned to loadgen client i.
func (s *Schedule) ClientPlan(i int) ClientPlan {
	c := s.cfg
	idx := uint64(i)
	var p ClientPlan
	if oneIn(c.SlowClientEvery, s.draw(saltSlow, idx)) {
		p.SlowDelay = c.SlowClientDelay
	}
	if oneIn(c.AbortEvery, s.draw(saltAbort, idx)) {
		span := uint64(c.AbortStepMax - c.AbortStepMin + 1)
		p.AbortStep = c.AbortStepMin + int(s.draw(saltAbortStep, idx)%span)
	}
	return p
}

// WrapGuard is the serve.Config.WrapGuard hook: it rewires the guard
// of the idx-th created session according to the schedule. Clean
// sessions are left untouched — their guards run the exact production
// path with no wrapper in the call chain.
func (s *Schedule) WrapGuard(idx uint64, g *core.Guard) {
	plan := s.SessionPlan(idx)
	if plan.Clean() {
		return
	}
	g.Signal = WrapSignal(g.Signal, plan)
}

// FaultedSessions returns how many of the first n created sessions
// carry a demoting fault — the exact demotion count a clean chaos run
// must report, provided every client steps past FaultStepMax (the
// Validate invariant guarantees aborts cannot preempt faults).
func (s *Schedule) FaultedSessions(n int) int {
	count := 0
	for i := 0; i < n; i++ {
		if s.SessionPlan(uint64(i)).Fault.Kind != None {
			count++
		}
	}
	return count
}

// ExpectedSteps returns the exact number of decisions a clean run of
// `clients` clients with the given per-client step budget must serve:
// each client steps to its abort point or the full budget.
func (s *Schedule) ExpectedSteps(clients, stepsPerClient int) int64 {
	var total int64
	for i := 0; i < clients; i++ {
		steps := stepsPerClient
		if p := s.ClientPlan(i); p.AbortStep > 0 && p.AbortStep < steps {
			steps = p.AbortStep
		}
		total += int64(steps)
	}
	return total
}
