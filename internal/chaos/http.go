package chaos

import (
	"net/http"
	"sync/atomic"
	"time"
)

// InjectedOverloadError is the error string carried by middleware-
// injected 503 bodies. It deliberately does not contain "draining":
// loadgen clients distinguish injected overload (retry with backoff)
// from a real drain (stop) by the body text, exactly as an operator
// would.
const InjectedOverloadError = "chaos: injected overload"

// Middleware wraps an http.Handler with the schedule's request-level
// faults: every RejectEvery-th arriving request is rejected with an
// injected 503 + Retry-After before it reaches the application, and
// every DelayEvery-th is stalled by Delay first (a slow upstream).
// Counting is by arrival order, so the injected totals are exact for a
// given request sequence even though the interleaving is not.
// FrameFaults returns the binary-transport twin of Middleware, shaped
// for serve.Config.FrameFault: the same RejectEvery/DelayEvery
// schedule applied per arriving protocol frame. A rejection is
// answered by the server with a retryable error frame (never a drain);
// a delay stalls the frame before it is served. Returns nil when the
// schedule injects no request-level faults.
func (s *Schedule) FrameFaults() func() (reject bool, delay time.Duration) {
	var ctr atomic.Uint64
	c := s.cfg
	if c.RejectEvery == 0 && c.DelayEvery == 0 {
		return nil
	}
	return func() (bool, time.Duration) {
		n := ctr.Add(1)
		if c.RejectEvery > 0 && n%uint64(c.RejectEvery) == 0 {
			return true, 0
		}
		if c.DelayEvery > 0 && n%uint64(c.DelayEvery) == 0 {
			return false, c.Delay
		}
		return false, 0
	}
}

func (s *Schedule) Middleware(next http.Handler) http.Handler {
	var ctr atomic.Uint64
	c := s.cfg
	if c.RejectEvery == 0 && c.DelayEvery == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := ctr.Add(1)
		if c.RejectEvery > 0 && n%uint64(c.RejectEvery) == 0 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"` + InjectedOverloadError + `"}`)) //nolint:errcheck // client went away
			return
		}
		if c.DelayEvery > 0 && n%uint64(c.DelayEvery) == 0 {
			time.Sleep(c.Delay)
		}
		next.ServeHTTP(w, r)
	})
}
