package chaos

import (
	"fmt"
	"math"

	"osap/internal/core"
)

// RecoveryConfig parameterizes a RecoverySchedule: the scripted
// demote→recover→re-demote exercise behind `osap-serve -recovery`.
// Unlike the randomized Schedule, every session's fault pattern is a
// pure function of its creation index — no seed, no sampling — so the
// harness can assert the exact step index of every demotion, every
// re-admission and every permanent latch, for every session at once.
type RecoveryConfig struct {
	// Steps is the per-client decision budget S; every fault pattern is
	// laid out inside it.
	Steps int
	// ReadmitL is the serve-side probation hysteresis l′: a session
	// recovers after this many consecutive confident shadow steps
	// (serve.Config.ReadmitL must be set to the same value).
	ReadmitL int
	// ReadmitCap is the per-session re-admission budget
	// (serve.Config.ReadmitCap); the cap-exhaustion pattern schedules
	// ReadmitCap+1 faults so its last demotion latches permanently.
	ReadmitCap int
}

// recoveryFaultBase is the step of the first scheduled fault, and
// recoveryFaultGap the number of live steps a recovered session serves
// before its next scheduled fault. Both are fixed: the schedule's
// value is exactness, not variety.
const (
	recoveryFaultBase = 6
	recoveryFaultGap  = 4
)

// chainEnd returns the step of the last fault in the cap-exhaustion
// chain: fault i fires ReadmitL (shadow) + recoveryFaultGap (live)
// steps after fault i-1's step.
func (c RecoveryConfig) chainEnd() int {
	return recoveryFaultBase + c.ReadmitCap*(c.ReadmitL+recoveryFaultGap)
}

// Validate checks that every pattern fits the step budget.
func (c RecoveryConfig) Validate() error {
	if c.ReadmitL < 2 {
		return fmt.Errorf("chaos: recovery ReadmitL %d < 2 (the tail pattern must end inside probation)", c.ReadmitL)
	}
	if c.ReadmitCap < 1 {
		return fmt.Errorf("chaos: recovery ReadmitCap %d < 1 (the chain pattern needs at least one re-admission)", c.ReadmitCap)
	}
	if c.Steps < c.chainEnd()+4 {
		return fmt.Errorf("chaos: recovery Steps %d < %d (cap-exhaustion chain must finish with margin)",
			c.Steps, c.chainEnd()+4)
	}
	return nil
}

// RecoveryScript returns the standard -recovery configuration, raising
// the step budget to the minimum the patterns need.
func RecoveryScript(stepsPerClient, readmitL, readmitCap int) RecoveryConfig {
	c := RecoveryConfig{Steps: stepsPerClient, ReadmitL: readmitL, ReadmitCap: readmitCap}
	if min := c.chainEnd() + 4; c.Steps < min {
		c.Steps = min
	}
	return c
}

// RecoveryPlan is one session's scripted fault pattern: Kind injected
// at each step in Steps (ascending). Between faults the wrapped signal
// reports a confident score of 0, so triggers never fire organically
// and every state transition in the run is scheduled.
type RecoveryPlan struct {
	Kind  Kind
	Steps []int
}

// Clean reports whether the plan injects nothing.
func (p RecoveryPlan) Clean() bool { return len(p.Steps) == 0 }

// The six recovery patterns, assigned round-robin by session creation
// index (idx % 6).
const (
	patClean     = 0 // no faults; serves live end to end
	patRecover   = 1 // one NaN: demote, shadow, re-admit
	patExhaust   = 2 // ReadmitCap+1 NaNs: recover cap times, then latch
	patPanic     = 3 // one panic: fault demotion, permanent from step one
	patRecoverIn = 4 // one +Inf: same shape as patRecover, Inf flavor
	patTail      = 5 // NaN near the end: the run finishes mid-probation
)

// recoveryPatterns is how many patterns the round-robin cycles over.
const recoveryPatterns = 6

// RecoverySchedule assigns a deterministic fault pattern to every
// session and predicts, in closed form, the exact demoted-flag value
// of every (session, step) pair plus all aggregate counters. Safe for
// concurrent use; every method is a pure function of the config.
type RecoverySchedule struct {
	cfg RecoveryConfig
}

// NewRecoverySchedule validates cfg and wraps it.
func NewRecoverySchedule(cfg RecoveryConfig) (*RecoverySchedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &RecoverySchedule{cfg: cfg}, nil
}

// Config returns the schedule's configuration.
func (s *RecoverySchedule) Config() RecoveryConfig { return s.cfg }

// Plan returns the idx-th created session's fault pattern.
func (s *RecoverySchedule) Plan(idx uint64) RecoveryPlan {
	c := s.cfg
	switch idx % recoveryPatterns {
	case patRecover:
		return RecoveryPlan{Kind: NaNScore, Steps: []int{recoveryFaultBase}}
	case patExhaust:
		steps := make([]int, c.ReadmitCap+1)
		for i := range steps {
			steps[i] = recoveryFaultBase + i*(c.ReadmitL+recoveryFaultGap)
		}
		return RecoveryPlan{Kind: NaNScore, Steps: steps}
	case patPanic:
		return RecoveryPlan{Kind: PanicObserve, Steps: []int{recoveryFaultBase}}
	case patRecoverIn:
		return RecoveryPlan{Kind: InfScore, Steps: []int{recoveryFaultBase}}
	case patTail:
		return RecoveryPlan{Kind: NaNScore, Steps: []int{c.Steps - 2}}
	}
	return RecoveryPlan{}
}

// WrapGuard is the serve.Config.WrapGuard hook. Every session is
// wrapped — including clean ones — because the recovery assertions
// need the uncertainty stream fully scripted: a confident 0 between
// scheduled faults means no trigger ever fires organically, so every
// demoted flag in the run is predicted by DemotedAt.
func (s *RecoverySchedule) WrapGuard(idx uint64, g *core.Guard) {
	g.Signal = &recoverySignal{inner: g.Signal, plan: s.Plan(idx)}
}

// recoverySignal pins a session's uncertainty stream to its scripted
// shape: the scheduled fault at each planned step, a confident 0
// everywhere else. The step counter counts Observe calls, which equal
// session steps as long as the session is live or in probation (a
// permanently latched session stops consulting its guard — the
// schedule places every fault before any latch, so indices stay
// aligned).
type recoverySignal struct {
	inner core.Signal
	plan  RecoveryPlan
	step  int
	next  int
}

// Observe implements core.Signal.
func (r *recoverySignal) Observe([]float64) float64 {
	step := r.step
	r.step++
	if r.next < len(r.plan.Steps) && step >= r.plan.Steps[r.next] {
		r.next++
		switch r.plan.Kind {
		case PanicObserve:
			panic(fmt.Sprintf("chaos: injected recovery panic at step %d", step))
		case NaNScore:
			return math.NaN()
		case InfScore:
			return math.Inf(1)
		}
	}
	return 0
}

// Reset implements core.Signal. Like faultSignal, the step counter
// keeps running across episodes: faults are scheduled against the
// session's lifetime.
func (r *recoverySignal) Reset() { r.inner.Reset() }

// Name implements core.Signal.
func (r *recoverySignal) Name() string { return r.inner.Name() }

// RecoveryExpectation is the closed-form outcome of a clean -recovery
// run over the first n created sessions, derived by replaying the
// probation automaton (DESIGN.md §13) over every session's plan.
type RecoveryExpectation struct {
	// FirstDemotions counts sessions that demote at least once
	// (= the osap_sessions_demoted_total counter).
	FirstDemotions int
	// Demotions counts demotion events, first and repeat.
	Demotions int
	// Redemotions counts demotions of previously recovered sessions.
	Redemotions int
	// Recoveries counts probation re-admissions.
	Recoveries int
	// Latched counts sessions whose demotion became permanent (fault
	// demotions plus cap exhaustion).
	Latched int
	// Panics counts injected panics reaching the panic-containment
	// path; NonFinite counts demotions caused by a non-finite score.
	Panics    int
	NonFinite int
	// EndDemoted counts sessions still demoted when the run ends;
	// EndProbation is the subset still recoverable (mid-probation).
	EndDemoted   int
	EndProbation int
	// DemotedSteps is the total number of steps answered in degraded
	// mode across the fleet.
	DemotedSteps int64
}

// sessionOutcome is one session's replay tally.
type sessionOutcome struct {
	demotions, redemotions, recoveries int
	latched                            bool
	panics, nonFinite                  int
	endDemoted, endProbation           bool
	demotedSteps                       int
}

// replay simulates the serve-side probation state machine over the
// idx-th session's plan: demote on a fault while live (permanently for
// a panic, or once the re-admission budget is spent), count confident
// shadow steps while in probation, re-admit after ReadmitL of them.
// visit, when non-nil, receives every step's demoted flag in order —
// the exact flag the server must report for that (session, step).
func (s *RecoverySchedule) replay(idx uint64, visit func(step int, demoted bool)) sessionOutcome {
	p := s.Plan(idx)
	l, budget := s.cfg.ReadmitL, s.cfg.ReadmitCap
	var o sessionOutcome
	demoted, latch := false, false
	calm, readmits, k := 0, 0, 0
	emit := func(step int, d bool) {
		if d {
			o.demotedSteps++
		}
		if visit != nil {
			visit(step, d)
		}
	}
	for step := 0; step < s.cfg.Steps; step++ {
		if demoted && latch {
			emit(step, true)
			continue
		}
		faultNow := k < len(p.Steps) && step == p.Steps[k]
		if faultNow {
			k++
		}
		if !demoted {
			if !faultNow {
				emit(step, false)
				continue
			}
			demoted, calm = true, 0
			latch = p.Kind == PanicObserve || l <= 0 || budget == 0 ||
				(budget > 0 && readmits >= budget)
			o.demotions++
			if o.demotions > 1 {
				o.redemotions++
			}
			if p.Kind == PanicObserve {
				o.panics++
			} else {
				o.nonFinite++
			}
			if latch {
				o.latched = true
			}
			emit(step, true)
			continue
		}
		// Probation shadow step. A panic here escalates to a permanent
		// latch; a non-finite score restarts the hysteresis; a confident
		// step advances it.
		if faultNow && p.Kind == PanicObserve {
			latch = true
			o.latched = true
			o.panics++
			emit(step, true)
			continue
		}
		confident := !faultNow
		if confident {
			calm++
		} else {
			calm = 0
		}
		if confident && calm >= l {
			demoted, latch = false, false
			readmits++
			calm = 0
			o.recoveries++
			emit(step, false)
			continue
		}
		emit(step, true)
	}
	o.endDemoted = demoted
	o.endProbation = demoted && !latch
	return o
}

// DemotedAt predicts the demoted flag the server must report for the
// idx-th session's step-th decision — the loadgen oracle behind the
// deterministic-recovery-index assertion.
func (s *RecoverySchedule) DemotedAt(idx uint64, step int) bool {
	var flag bool
	s.replay(idx, func(st int, d bool) {
		if st == step {
			flag = d
		}
	})
	return flag
}

// Expected returns the closed-form aggregate outcome of a clean run
// over the first n created sessions.
func (s *RecoverySchedule) Expected(n int) RecoveryExpectation {
	var ex RecoveryExpectation
	for i := 0; i < n; i++ {
		o := s.replay(uint64(i), nil)
		if o.demotions > 0 {
			ex.FirstDemotions++
		}
		ex.Demotions += o.demotions
		ex.Redemotions += o.redemotions
		ex.Recoveries += o.recoveries
		if o.latched {
			ex.Latched++
		}
		ex.Panics += o.panics
		ex.NonFinite += o.nonFinite
		if o.endDemoted {
			ex.EndDemoted++
		}
		if o.endProbation {
			ex.EndProbation++
		}
		ex.DemotedSteps += int64(o.demotedSteps)
	}
	return ex
}
