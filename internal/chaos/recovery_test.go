package chaos

import (
	"math"
	"testing"
)

func testRecoverySchedule(t *testing.T) *RecoverySchedule {
	t.Helper()
	s, err := NewRecoverySchedule(RecoveryScript(48, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// flags replays one session and returns its full demoted-flag vector.
func flags(s *RecoverySchedule, idx uint64) []bool {
	out := make([]bool, s.Config().Steps)
	s.replay(idx, func(step int, d bool) { out[step] = d })
	return out
}

// wantFlags builds a flag vector from half-open demoted ranges.
func wantFlags(steps int, ranges ...[2]int) []bool {
	out := make([]bool, steps)
	for _, r := range ranges {
		for i := r[0]; i < r[1]; i++ {
			out[i] = true
		}
	}
	return out
}

func eqFlags(t *testing.T, name string, got, want []bool) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: step %d demoted = %v, want %v", name, i, got[i], want[i])
		}
	}
}

// TestRecoveryPatternFlags pins the exact per-step demoted flags of
// every pattern under the standard config (S=48, l′=4, cap=2): the
// demotion fires at the fault step, the flag holds for exactly l′
// steps, and the re-admission serves live at fault+l′.
func TestRecoveryPatternFlags(t *testing.T) {
	s := testRecoverySchedule(t)
	const S = 48
	eqFlags(t, "clean", flags(s, patClean), wantFlags(S))
	// NaN@6: demoted 6..9, recovered at 10.
	eqFlags(t, "recover", flags(s, patRecover), wantFlags(S, [2]int{6, 10}))
	eqFlags(t, "recover-inf", flags(s, patRecoverIn), wantFlags(S, [2]int{6, 10}))
	// NaN@6,14,22: two recoveries, then the cap latches at 22.
	eqFlags(t, "exhaust", flags(s, patExhaust),
		wantFlags(S, [2]int{6, 10}, [2]int{14, 18}, [2]int{22, S}))
	// panic@6: permanent from the fault on.
	eqFlags(t, "panic", flags(s, patPanic), wantFlags(S, [2]int{6, S}))
	// NaN@46: the run ends mid-probation.
	eqFlags(t, "tail", flags(s, patTail), wantFlags(S, [2]int{46, S}))
}

// TestRecoveryExpectedTotals checks the closed-form aggregates over a
// whole number of pattern cycles.
func TestRecoveryExpectedTotals(t *testing.T) {
	s := testRecoverySchedule(t)
	const cycles = 10
	ex := s.Expected(cycles * recoveryPatterns)
	want := RecoveryExpectation{
		FirstDemotions: 5 * cycles, // every pattern but clean
		Demotions:      (1 + 3 + 1 + 1 + 1) * cycles,
		Redemotions:    2 * cycles, // exhaust re-demotes twice
		Recoveries:     (1 + 2 + 1) * cycles,
		Latched:        2 * cycles, // exhaust + panic
		Panics:         cycles,
		NonFinite:      (1 + 3 + 1 + 1) * cycles,
		EndDemoted:     3 * cycles, // exhaust, panic, tail
		EndProbation:   cycles,     // tail only
		DemotedSteps:   (4 + 34 + 42 + 4 + 2) * cycles,
	}
	if ex != want {
		t.Fatalf("Expected(%d) = %+v, want %+v", cycles*recoveryPatterns, ex, want)
	}
}

// TestRecoveryDemotedAtMatchesReplay cross-checks the per-step oracle
// against the replay vectors for every pattern.
func TestRecoveryDemotedAtMatchesReplay(t *testing.T) {
	s := testRecoverySchedule(t)
	for idx := uint64(0); idx < recoveryPatterns; idx++ {
		fs := flags(s, idx)
		for step, want := range fs {
			if got := s.DemotedAt(idx, step); got != want {
				t.Fatalf("DemotedAt(%d, %d) = %v, want %v", idx, step, got, want)
			}
		}
	}
}

// TestRecoverySignalScript checks the wrapper: a confident 0 on every
// unscheduled step, the scripted non-finite value at each fault step,
// and a panic for the panic kind.
func TestRecoverySignalScript(t *testing.T) {
	sig := &recoverySignal{inner: constSignal{0.5}, plan: RecoveryPlan{Kind: NaNScore, Steps: []int{2, 5}}}
	wantNaN := map[int]bool{2: true, 5: true}
	for step := 0; step < 8; step++ {
		v := sig.Observe(nil)
		if wantNaN[step] {
			if !math.IsNaN(v) {
				t.Fatalf("step %d: score %v, want NaN", step, v)
			}
		} else if v != 0 {
			t.Fatalf("step %d: score %v, want confident 0 (never the inner signal)", step, v)
		}
	}
	if sig.Name() != "const" {
		t.Fatalf("wrapper changed signal name to %q", sig.Name())
	}

	inf := &recoverySignal{inner: constSignal{0}, plan: RecoveryPlan{Kind: InfScore, Steps: []int{0}}}
	if v := inf.Observe(nil); !math.IsInf(v, 1) {
		t.Fatalf("inf fault score = %v", v)
	}

	pan := &recoverySignal{inner: constSignal{0}, plan: RecoveryPlan{Kind: PanicObserve, Steps: []int{0}}}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic kind did not panic")
			}
		}()
		pan.Observe(nil)
	}()
}

func TestRecoveryConfigValidate(t *testing.T) {
	bad := []RecoveryConfig{
		{Steps: 48, ReadmitL: 1, ReadmitCap: 2}, // tail pattern cannot end in probation
		{Steps: 48, ReadmitL: 4, ReadmitCap: 0}, // chain pattern needs a re-admission
		{Steps: 20, ReadmitL: 4, ReadmitCap: 2}, // chain does not fit
	}
	for i, cfg := range bad {
		if _, err := NewRecoverySchedule(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// RecoveryScript raises an undersized budget to the minimum.
	c := RecoveryScript(8, 4, 2)
	if err := c.Validate(); err != nil {
		t.Errorf("RecoveryScript(8, 4, 2) invalid: %v", err)
	}
}

// TestRecoveryFaultsPrecedeLatch checks the alignment invariant the
// signal wrapper depends on: every scheduled fault fires while the
// session still consults its guard (live or probation), never after a
// permanent latch stopped the Observe stream.
func TestRecoveryFaultsPrecedeLatch(t *testing.T) {
	s := testRecoverySchedule(t)
	for idx := uint64(0); idx < recoveryPatterns; idx++ {
		p := s.Plan(idx)
		if p.Clean() {
			continue
		}
		last := p.Steps[len(p.Steps)-1]
		fs := flags(s, idx)
		// Before the last fault there must be no latched run: a latched
		// session never flips back, so check no demoted stretch before
		// `last` extends to the end of the episode.
		for start := 0; start < last; start++ {
			if !fs[start] {
				continue
			}
			end := start
			for end < len(fs) && fs[end] {
				end++
			}
			if end == len(fs) && last > start {
				t.Fatalf("pattern %d: fault at %d scheduled inside a permanent latch starting at %d", idx, last, start)
			}
			start = end
		}
	}
}
