package chaos

import (
	"math"

	"osap/internal/nn"
)

// PoisonNetworks overwrites every parameter of the given networks with
// math.MaxFloat64 — the "bad training run" artifact fault. The value
// is deliberately finite so the artifact still JSON-encodes and passes
// checksum verification (it is not corrupt, just wrong): the fault
// only surfaces at inference time, where the first dense product
// overflows to ±Inf, the softmax yields NaN probabilities, and the
// session demotes to the safe policy on its first step. Nil networks
// are skipped so callers can pass optional members unconditionally.
func PoisonNetworks(nets ...*nn.Network) {
	for _, n := range nets {
		if n == nil {
			continue
		}
		for _, p := range n.Params() {
			for i := range p.W {
				p.W[i] = math.MaxFloat64
			}
		}
	}
}
