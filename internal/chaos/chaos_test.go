package chaos

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// constSignal is a minimal core.Signal for wrapper tests.
type constSignal struct{ v float64 }

func (c constSignal) Observe([]float64) float64 { return c.v }
func (c constSignal) Reset()                    {}
func (c constSignal) Name() string              { return "const" }

func testSchedule(t *testing.T, cfg Config) *Schedule {
	t.Helper()
	s, err := NewSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScheduleDeterminism(t *testing.T) {
	cfg := ServeScript(42, 48)
	a := testSchedule(t, cfg)
	b := testSchedule(t, cfg)
	for i := 0; i < 500; i++ {
		if a.SessionPlan(uint64(i)) != b.SessionPlan(uint64(i)) {
			t.Fatalf("session plan %d differs between identical schedules", i)
		}
		if a.ClientPlan(i) != b.ClientPlan(i) {
			t.Fatalf("client plan %d differs between identical schedules", i)
		}
	}
	// A different seed must produce a different schedule.
	cfg2 := cfg
	cfg2.Seed = 43
	c := testSchedule(t, cfg2)
	same := 0
	for i := 0; i < 500; i++ {
		if a.SessionPlan(uint64(i)) == c.SessionPlan(uint64(i)) {
			same++
		}
	}
	if same == 500 {
		t.Fatal("seed change did not change the schedule")
	}
}

func TestScheduleBoundsAndCounts(t *testing.T) {
	cfg := ServeScript(7, 48)
	s := testSchedule(t, cfg)
	const n = 1000
	faulted := 0
	for i := 0; i < n; i++ {
		p := s.SessionPlan(uint64(i))
		if p.Fault.Kind != None {
			faulted++
			if p.Fault.Step < cfg.FaultStepMin || p.Fault.Step > cfg.FaultStepMax {
				t.Fatalf("fault step %d outside [%d, %d]", p.Fault.Step, cfg.FaultStepMin, cfg.FaultStepMax)
			}
		}
		cp := s.ClientPlan(i)
		if cp.AbortStep != 0 && (cp.AbortStep < cfg.AbortStepMin || cp.AbortStep > cfg.AbortStepMax) {
			t.Fatalf("abort step %d outside [%d, %d]", cp.AbortStep, cfg.AbortStepMin, cfg.AbortStepMax)
		}
	}
	if got := s.FaultedSessions(n); got != faulted {
		t.Fatalf("FaultedSessions = %d, counted %d", got, faulted)
	}
	// ~1 in 8 sessions faulted; allow wide slack around the rate.
	if faulted < n/16 || faulted > n/4 {
		t.Fatalf("faulted %d of %d sessions, want roughly 1 in %d", faulted, n, cfg.FaultEvery)
	}
	var manual int64
	for i := 0; i < n; i++ {
		steps := 48
		if p := s.ClientPlan(i); p.AbortStep > 0 && p.AbortStep < steps {
			steps = p.AbortStep
		}
		manual += int64(steps)
	}
	if got := s.ExpectedSteps(n, 48); got != manual {
		t.Fatalf("ExpectedSteps = %d, manual sum %d", got, manual)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{FaultEvery: 2, FaultStepMin: 5, FaultStepMax: 3},
		{SpikeSessionEvery: 2},
		{AbortEvery: 2, AbortStepMin: 0, AbortStepMax: 4},
		// Faults may fire after aborts begin: the exactness invariant breaks.
		{FaultEvery: 2, FaultStepMin: 1, FaultStepMax: 10, AbortEvery: 3, AbortStepMin: 8, AbortStepMax: 12},
		{RejectEvery: -1},
	}
	for i, cfg := range bad {
		if _, err := NewSchedule(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewSchedule(ServeScript(1, 48)); err != nil {
		t.Errorf("ServeScript rejected: %v", err)
	}
}

func TestWrapSignalInjectsNonFinite(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		want func(float64) bool
	}{
		{NaNScore, func(v float64) bool { return math.IsNaN(v) }},
		{InfScore, func(v float64) bool { return math.IsInf(v, 1) }},
	} {
		sig := WrapSignal(constSignal{0.5}, SessionPlan{Fault: SessionFault{Kind: tc.kind, Step: 2}})
		for step := 0; step < 2; step++ {
			if v := sig.Observe(nil); v != 0.5 {
				t.Fatalf("%v: step %d score = %v before fault, want 0.5", tc.kind, step, v)
			}
		}
		if v := sig.Observe(nil); !tc.want(v) {
			t.Fatalf("%v: fault step score = %v", tc.kind, v)
		}
		// One-shot: passthrough afterwards.
		if v := sig.Observe(nil); v != 0.5 {
			t.Fatalf("%v: post-fault score = %v, want passthrough 0.5", tc.kind, v)
		}
		if sig.Name() != "const" {
			t.Fatalf("wrapper changed signal name to %q", sig.Name())
		}
	}
}

func TestWrapSignalPanics(t *testing.T) {
	sig := WrapSignal(constSignal{0}, SessionPlan{Fault: SessionFault{Kind: PanicObserve, Step: 0}})
	defer func() {
		if recover() == nil {
			t.Fatal("PanicObserve did not panic")
		}
	}()
	sig.Observe(nil)
}

func TestWrapSignalSpikes(t *testing.T) {
	slept := 0
	sig := &faultSignal{
		inner: constSignal{0},
		plan:  SessionPlan{SpikeEvery: 4, SpikePhase: 1, SpikeDelay: time.Millisecond},
		sleep: func(d time.Duration) {
			if d != time.Millisecond {
				t.Fatalf("spike delay = %v", d)
			}
			slept++
		},
	}
	for i := 0; i < 12; i++ {
		sig.Observe(nil)
	}
	if slept != 3 {
		t.Fatalf("spiked %d of 12 steps, want 3 (every 4th, phase 1)", slept)
	}
}

func TestMiddlewareRejectsAndForwards(t *testing.T) {
	sched := testSchedule(t, Config{Seed: 1, RejectEvery: 3})
	served := 0
	h := sched.Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		served++
		w.WriteHeader(http.StatusOK)
	}))
	rejected := 0
	for i := 0; i < 9; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
		if rec.Code == http.StatusServiceUnavailable {
			rejected++
			if rec.Header().Get("Retry-After") == "" {
				t.Fatal("injected 503 missing Retry-After")
			}
			body, _ := io.ReadAll(rec.Body)
			if !bytes.Contains(body, []byte(InjectedOverloadError)) {
				t.Fatalf("injected 503 body = %s", body)
			}
		}
	}
	if rejected != 3 || served != 6 {
		t.Fatalf("rejected %d served %d of 9, want 3/6", rejected, served)
	}
	// A no-fault schedule must not interpose at all.
	plain := testSchedule(t, Config{Seed: 1})
	inner := http.NewServeMux()
	if got := plain.Middleware(inner); got != http.Handler(inner) {
		t.Fatal("no-fault middleware wrapped the handler")
	}
}

func TestCorruptFileFlipsOneBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	orig := []byte("the quick brown fox jumps over the lazy dog")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	off, bit, err := CorruptFile(path, 99)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range orig {
		if orig[i] != got[i] {
			diff++
			if i != off || orig[i]^got[i] != 1<<bit {
				t.Fatalf("byte %d changed %08b→%08b, reported (%d, %d)", i, orig[i], got[i], off, bit)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes changed, want exactly 1", diff)
	}
	// Same seed → same bit: a second flip restores the original.
	if _, _, err := CorruptFile(path, 99); err != nil {
		t.Fatal(err)
	}
	back, _ := os.ReadFile(path)
	if !bytes.Equal(back, orig) {
		t.Fatal("double flip with one seed did not restore the file")
	}
}

func TestTruncateFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateFile(path, 0.5); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 50 {
		t.Fatalf("size after truncate = %d, want 50", info.Size())
	}
	if err := TruncateFile(path, 1.5); err == nil {
		t.Fatal("fraction 1.5 accepted")
	}
}
