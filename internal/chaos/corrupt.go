package chaos

import (
	"fmt"
	"os"
)

// CorruptFile flips one deterministically chosen bit of the file at
// path — the minimal artifact-corruption fault (a storage bit-flip).
// It returns the byte offset and bit index flipped so tests can report
// what was damaged. The choice is a pure function of (seed, file
// size): the same seed corrupts the same bit of a given file.
func CorruptFile(path string, seed uint64) (byteOff int, bit uint, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("chaos: corrupt %s: %w", path, err)
	}
	if len(data) == 0 {
		return 0, 0, fmt.Errorf("chaos: corrupt %s: file is empty", path)
	}
	pos := splitmix64(seed) % uint64(len(data)*8)
	byteOff = int(pos / 8)
	bit = uint(pos % 8)
	data[byteOff] ^= 1 << bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return 0, 0, fmt.Errorf("chaos: corrupt %s: %w", path, err)
	}
	return byteOff, bit, nil
}

// TruncateFile cuts the file to the given fraction of its size (e.g.
// 0.5 keeps the first half) — the torn-write / partial-download
// artifact fault.
func TruncateFile(path string, frac float64) error {
	if frac < 0 || frac >= 1 {
		return fmt.Errorf("chaos: truncate fraction %g outside [0, 1)", frac)
	}
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("chaos: truncate %s: %w", path, err)
	}
	if err := os.Truncate(path, int64(float64(info.Size())*frac)); err != nil {
		return fmt.Errorf("chaos: truncate %s: %w", path, err)
	}
	return nil
}
