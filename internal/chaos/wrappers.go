package chaos

import (
	"fmt"
	"math"
	"time"

	"osap/internal/core"
	"osap/internal/mdp"
)

// faultSignal wraps a session's uncertainty signal with its scheduled
// faults. The signal is the injection point because Observe runs
// exactly once per guard decision, unconditionally — the learned
// policy is skipped whenever the trigger has latched, so step-indexed
// faults planted there could silently never fire.
type faultSignal struct {
	inner core.Signal
	plan  SessionPlan
	sleep func(time.Duration)
	step  int
	done  bool
}

// WrapSignal returns sig with plan's faults injected. The demoting
// fault is one-shot: after it fires the wrapper is a transparent
// passthrough (in the serve stack the session is demoted by then and
// the guard is never consulted again).
func WrapSignal(sig core.Signal, plan SessionPlan) core.Signal {
	return &faultSignal{inner: sig, plan: plan, sleep: time.Sleep}
}

// Observe implements core.Signal.
func (f *faultSignal) Observe(obs []float64) float64 {
	step := f.step
	f.step++
	if f.plan.SpikeEvery > 0 && step%f.plan.SpikeEvery == f.plan.SpikePhase {
		f.sleep(f.plan.SpikeDelay)
	}
	if !f.done && f.plan.Fault.Kind != None && step >= f.plan.Fault.Step {
		f.done = true
		switch f.plan.Fault.Kind {
		case PanicObserve:
			panic(fmt.Sprintf("chaos: injected inference panic at step %d", step))
		case NaNScore:
			return math.NaN()
		case InfScore:
			return math.Inf(1)
		}
	}
	return f.inner.Observe(obs)
}

// Reset implements core.Signal. The step counter deliberately keeps
// running across episodes: the fault is scheduled against the
// session's lifetime, not any single episode.
func (f *faultSignal) Reset() { f.inner.Reset() }

// Name implements core.Signal.
func (f *faultSignal) Name() string { return f.inner.Name() }

// PoisonPolicy wraps a policy so its action distribution carries a NaN
// from call After onward — the "NaN leaks out of nn.ForwardWS" fault
// shape, for unit tests of non-finite-probs handling. The inner
// policy's buffer is never mutated; the poison lives in a private
// copy.
type PoisonPolicy struct {
	Inner mdp.Policy
	After int

	calls int
	buf   []float64
}

// Probs implements mdp.Policy.
func (p *PoisonPolicy) Probs(obs []float64) []float64 {
	probs := p.Inner.Probs(obs)
	call := p.calls
	p.calls++
	if call < p.After {
		return probs
	}
	if cap(p.buf) < len(probs) {
		p.buf = make([]float64, len(probs))
	}
	buf := p.buf[:len(probs)]
	copy(buf, probs)
	buf[0] = math.NaN()
	return buf
}

// PanicPolicy is a policy that panics on every call — the bluntest
// inference fault, for unit tests.
type PanicPolicy struct{}

// Probs implements mdp.Policy.
func (PanicPolicy) Probs([]float64) []float64 { panic("chaos: injected policy panic") }
