package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"osap/internal/experiments"
)

// Generation is one fully loaded, checksum-verified version: the
// binding a session acquires at admission and keeps until it ends.
type Generation struct {
	Version  string
	Dir      string
	Manifest *Manifest
	// Artifacts is the loaded, envelope-verified artifact set.
	Artifacts *experiments.Artifacts
	// ArtifactSHA256 is the manifest digest of the artifact file the
	// generation was loaded from — the identity exported on /metrics.
	ArtifactSHA256 string
}

// Registry reads versions from a root directory. It is stateless
// beyond the root path: every call re-reads the filesystem, so a
// rename-published version is visible on the next call.
type Registry struct {
	root string
}

// Open validates that root exists and is a directory.
func Open(root string) (*Registry, error) {
	fi, err := os.Stat(root)
	if err != nil {
		return nil, fmt.Errorf("registry: open %s: %w", root, err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("registry: open %s: not a directory", root)
	}
	return &Registry{root: root}, nil
}

// Root returns the registry's root directory.
func (r *Registry) Root() string { return r.root }

// Versions lists published version names in sorted order. Staging
// temp dirs (dot-prefixed) and stray files are skipped.
func (r *Registry) Versions() ([]string, error) {
	entries, err := os.ReadDir(r.root)
	if err != nil {
		return nil, fmt.Errorf("registry: list %s: %w", r.root, err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() || !ValidVersion(e.Name()) {
			continue
		}
		if _, err := os.Stat(filepath.Join(r.root, e.Name(), ManifestName)); err != nil {
			continue // not a published version (no manifest)
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

// Partition splits the registry's versions into promoted (eligible as
// a boot/serving default) and proposed (online-learning refits
// awaiting canary promotion), each in sorted order. Versions whose
// manifest cannot be read or validated are omitted from both lists —
// a version the registry cannot vouch for must not be offered for
// serving.
func (r *Registry) Partition() (promoted, proposed []string, err error) {
	all, err := r.Versions()
	if err != nil {
		return nil, nil, err
	}
	for _, v := range all {
		m, err := r.Manifest(v)
		if err != nil {
			continue
		}
		if m.Proposed {
			proposed = append(proposed, v)
		} else {
			promoted = append(promoted, v)
		}
	}
	return promoted, proposed, nil
}

// Manifest reads and validates one version's manifest.
func (r *Registry) Manifest(version string) (*Manifest, error) {
	if !ValidVersion(version) {
		return nil, fmt.Errorf("registry: invalid version name %q", version)
	}
	data, err := os.ReadFile(filepath.Join(r.root, version, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("registry: version %s: %w", version, err)
	}
	m, err := ParseManifest(data)
	if err != nil {
		return nil, fmt.Errorf("registry: version %s: %w", version, err)
	}
	if m.Version != version {
		return nil, fmt.Errorf("registry: version dir %s holds manifest for %q", version, m.Version)
	}
	return m, nil
}

// Verify re-hashes every file the manifest names and compares against
// the recorded digests, in sorted file order. It returns the manifest
// on success so callers can chain into a load.
func (r *Registry) Verify(version string) (*Manifest, error) {
	m, err := r.Manifest(version)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(r.root, version)
	for _, name := range m.FileNames() {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("registry: version %s: %w", version, err)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != m.Files[name] {
			return nil, fmt.Errorf("registry: version %s: file %s corrupted: sha256 %s does not match manifest %s",
				version, name, got, m.Files[name])
		}
	}
	return m, nil
}

// artifactFile picks the manifest file holding dataset's artifacts:
// "<dataset>.json" exactly, or the sole .json file when only one is
// listed.
func artifactFile(m *Manifest, dataset string) (string, error) {
	want := dataset + ".json"
	if _, ok := m.Files[want]; ok {
		return want, nil
	}
	var jsons []string
	for _, name := range m.FileNames() {
		if strings.HasSuffix(name, ".json") {
			jsons = append(jsons, name)
		}
	}
	if len(jsons) == 1 {
		return jsons[0], nil
	}
	return "", fmt.Errorf("registry: version %s: no artifact file for dataset %q among %v", m.Version, dataset, m.FileNames())
}

// Load verifies a version end to end — manifest digests, then the
// artifact envelope's own checksum — and returns the bound
// Generation. dataset selects the artifact file when a version
// carries several; "" accepts a single-artifact version.
func (r *Registry) Load(version, dataset string) (*Generation, error) {
	m, err := r.Verify(version)
	if err != nil {
		return nil, err
	}
	if dataset != "" && m.Dataset != dataset {
		return nil, fmt.Errorf("registry: version %s serves dataset %q, want %q", version, m.Dataset, dataset)
	}
	name, err := artifactFile(m, m.Dataset)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(r.root, version)
	arts, err := experiments.LoadArtifacts(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("registry: version %s: %w", version, err)
	}
	return &Generation{
		Version:        version,
		Dir:            dir,
		Manifest:       m,
		Artifacts:      arts,
		ArtifactSHA256: m.Files[name],
	}, nil
}

// Meta carries publisher-supplied manifest fields for WriteVersion.
// CreatedAt (RFC3339) comes from the caller: the registry itself
// never reads the clock.
type Meta struct {
	Version   string
	Parent    string
	CreatedAt string
	Notes     string
	// Proposed marks the version as an unpromoted online-learning
	// proposal (see Manifest.Proposed).
	Proposed bool
}

// WriteVersion publishes an artifact set as a new version: artifacts
// and manifest are staged into a dot-prefixed temp directory, then
// renamed into place in one atomic step, so concurrent readers (and
// the poll Watcher) never see a partial version. Publishing an
// existing version name fails.
func WriteVersion(root string, meta Meta, arts *experiments.Artifacts) (*Manifest, error) {
	if !ValidVersion(meta.Version) {
		return nil, fmt.Errorf("registry: invalid version name %q", meta.Version)
	}
	if meta.Parent != "" && !ValidVersion(meta.Parent) {
		return nil, fmt.Errorf("registry: invalid parent version %q", meta.Parent)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("registry: write version: %w", err)
	}
	final := filepath.Join(root, meta.Version)
	if _, err := os.Stat(final); err == nil {
		return nil, fmt.Errorf("registry: version %s already exists", meta.Version)
	}
	tmp := filepath.Join(root, ".tmp-"+meta.Version)
	if err := os.RemoveAll(tmp); err != nil {
		return nil, fmt.Errorf("registry: write version: %w", err)
	}
	path, err := experiments.SaveArtifacts(tmp, arts)
	if err != nil {
		os.RemoveAll(tmp) //nolint:errcheck // best-effort cleanup
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		os.RemoveAll(tmp) //nolint:errcheck // best-effort cleanup
		return nil, fmt.Errorf("registry: write version: %w", err)
	}
	sum := sha256.Sum256(data)
	m := &Manifest{
		Format:    ManifestFormat,
		Version:   meta.Version,
		Dataset:   arts.Dataset,
		CreatedAt: meta.CreatedAt,
		Parent:    meta.Parent,
		Notes:     meta.Notes,
		Proposed:  meta.Proposed,
		Files:     map[string]string{filepath.Base(path): hex.EncodeToString(sum[:])},
	}
	enc, err := m.Encode()
	if err != nil {
		os.RemoveAll(tmp) //nolint:errcheck // best-effort cleanup
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(tmp, ManifestName), enc, 0o644); err != nil {
		os.RemoveAll(tmp) //nolint:errcheck // best-effort cleanup
		return nil, fmt.Errorf("registry: write manifest: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.RemoveAll(tmp) //nolint:errcheck // best-effort cleanup
		return nil, fmt.Errorf("registry: publish %s: %w", meta.Version, err)
	}
	return m, nil
}
