package registry_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"osap/internal/chaos"
	"osap/internal/experiments"
	"osap/internal/registry"
	"osap/internal/serve"
)

func testArtifacts(t *testing.T) *experiments.Artifacts {
	t.Helper()
	arts, err := serve.SyntheticArtifacts("synthetic", 2, 7)
	if err != nil {
		t.Fatalf("synthetic artifacts: %v", err)
	}
	return arts
}

func TestWriteLoadRoundTrip(t *testing.T) {
	root := t.TempDir()
	arts := testArtifacts(t)
	m, err := registry.WriteVersion(root, registry.Meta{
		Version:   "v1",
		CreatedAt: "2026-08-08T00:00:00Z",
		Notes:     "seed",
	}, arts)
	if err != nil {
		t.Fatalf("WriteVersion: %v", err)
	}
	if m.Version != "v1" || m.Dataset != arts.Dataset || len(m.Files) != 1 {
		t.Fatalf("unexpected manifest: %+v", m)
	}

	reg, err := registry.Open(root)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	vs, err := reg.Versions()
	if err != nil || len(vs) != 1 || vs[0] != "v1" {
		t.Fatalf("Versions = %v, %v; want [v1]", vs, err)
	}
	gen, err := reg.Load("v1", arts.Dataset)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if gen.Artifacts.Dataset != arts.Dataset {
		t.Fatalf("loaded dataset %q, want %q", gen.Artifacts.Dataset, arts.Dataset)
	}
	if len(gen.Artifacts.Agents) != len(arts.Agents) {
		t.Fatalf("loaded %d agents, want %d", len(gen.Artifacts.Agents), len(arts.Agents))
	}
	if gen.ArtifactSHA256 == "" || gen.ArtifactSHA256 != m.Files[arts.Dataset+".json"] {
		t.Fatalf("generation checksum %q does not match manifest", gen.ArtifactSHA256)
	}

	// Lineage chains through Parent.
	if _, err := registry.WriteVersion(root, registry.Meta{Version: "v2", Parent: "v1"}, arts); err != nil {
		t.Fatalf("WriteVersion v2: %v", err)
	}
	m2, err := reg.Manifest("v2")
	if err != nil || m2.Parent != "v1" {
		t.Fatalf("v2 manifest parent = %q, %v; want v1", m2.Parent, err)
	}
}

func TestWriteVersionRejects(t *testing.T) {
	root := t.TempDir()
	arts := testArtifacts(t)
	if _, err := registry.WriteVersion(root, registry.Meta{Version: "v1"}, arts); err != nil {
		t.Fatalf("WriteVersion: %v", err)
	}
	if _, err := registry.WriteVersion(root, registry.Meta{Version: "v1"}, arts); err == nil {
		t.Fatal("duplicate version accepted")
	}
	for _, bad := range []string{"", ".hidden", "a/b", "..", "v 1", "v\x00"} {
		if _, err := registry.WriteVersion(root, registry.Meta{Version: bad}, arts); err == nil {
			t.Errorf("version name %q accepted", bad)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	root := t.TempDir()
	arts := testArtifacts(t)
	if _, err := registry.WriteVersion(root, registry.Meta{Version: "v1"}, arts); err != nil {
		t.Fatalf("WriteVersion: %v", err)
	}
	reg, err := registry.Open(root)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := reg.Verify("v1"); err != nil {
		t.Fatalf("Verify clean: %v", err)
	}
	path := filepath.Join(root, "v1", arts.Dataset+".json")
	if _, _, err := chaos.CorruptFile(path, 3); err != nil {
		t.Fatalf("CorruptFile: %v", err)
	}
	if _, err := reg.Verify("v1"); err == nil {
		t.Fatal("Verify accepted a corrupted artifact file")
	}
	if _, err := reg.Load("v1", arts.Dataset); err == nil {
		t.Fatal("Load accepted a corrupted artifact file")
	}
}

func TestManifestMismatches(t *testing.T) {
	root := t.TempDir()
	arts := testArtifacts(t)
	if _, err := registry.WriteVersion(root, registry.Meta{Version: "v1"}, arts); err != nil {
		t.Fatalf("WriteVersion: %v", err)
	}
	reg, err := registry.Open(root)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Wrong dataset is refused at Load.
	if _, err := reg.Load("v1", "no-such-dataset"); err == nil {
		t.Fatal("Load accepted wrong dataset")
	}
	// A version dir whose manifest claims another version is refused.
	if err := os.Rename(filepath.Join(root, "v1"), filepath.Join(root, "v9")); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, err := reg.Manifest("v9"); err == nil {
		t.Fatal("accepted manifest whose version differs from its directory")
	}
}

func TestVersionsSkipsJunk(t *testing.T) {
	root := t.TempDir()
	arts := testArtifacts(t)
	if _, err := registry.WriteVersion(root, registry.Meta{Version: "v1"}, arts); err != nil {
		t.Fatalf("WriteVersion: %v", err)
	}
	// Staging temp dirs, plain files, and manifest-less dirs are all
	// invisible.
	if err := os.MkdirAll(filepath.Join(root, ".tmp-v2"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "half-published"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(root)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	vs, err := reg.Versions()
	if err != nil || len(vs) != 1 || vs[0] != "v1" {
		t.Fatalf("Versions = %v, %v; want [v1]", vs, err)
	}
}

func TestWatcherSeesNewVersions(t *testing.T) {
	root := t.TempDir()
	arts := testArtifacts(t)
	if _, err := registry.WriteVersion(root, registry.Meta{Version: "v1"}, arts); err != nil {
		t.Fatalf("WriteVersion: %v", err)
	}
	reg, err := registry.Open(root)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	type event struct{ added, all, proposed []string }
	events := make(chan event, 4)
	// Long poll interval: the test drives scans via Rescan only.
	w, err := registry.NewWatcher(reg, time.Hour, func(added, all, proposed []string) {
		events <- event{added, all, proposed}
	})
	if err != nil {
		t.Fatalf("NewWatcher: %v", err)
	}
	defer w.Stop()

	// Known versions at start never fire.
	w.Rescan()
	select {
	case ev := <-events:
		t.Fatalf("spurious event for pre-existing versions: %+v", ev)
	case <-time.After(100 * time.Millisecond):
	}

	if _, err := registry.WriteVersion(root, registry.Meta{Version: "v2", Parent: "v1"}, arts); err != nil {
		t.Fatalf("WriteVersion v2: %v", err)
	}
	w.Rescan()
	select {
	case ev := <-events:
		if len(ev.added) != 1 || ev.added[0] != "v2" || len(ev.all) != 2 {
			t.Fatalf("event = %+v, want added [v2] of [v1 v2]", ev)
		}
		if len(ev.proposed) != 0 {
			t.Fatalf("event lists proposed %v, want none", ev.proposed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher missed published version")
	}

	// A proposed version (an online-learning refit) fires too, but is
	// classified separately from the promoted lineage.
	if _, err := registry.WriteVersion(root, registry.Meta{Version: "v2-refit-001", Parent: "v2", Proposed: true}, arts); err != nil {
		t.Fatalf("WriteVersion proposal: %v", err)
	}
	w.Rescan()
	select {
	case ev := <-events:
		if len(ev.added) != 1 || ev.added[0] != "v2-refit-001" {
			t.Fatalf("event = %+v, want added [v2-refit-001]", ev)
		}
		if len(ev.proposed) != 1 || ev.proposed[0] != "v2-refit-001" {
			t.Fatalf("event classified proposed %v, want [v2-refit-001]", ev.proposed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher missed proposed version")
	}

	// The same version never fires twice.
	w.Rescan()
	select {
	case ev := <-events:
		t.Fatalf("duplicate event: %+v", ev)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestWatcherZeroIntervalDisablesPolling(t *testing.T) {
	root := t.TempDir()
	arts := testArtifacts(t)
	if _, err := registry.WriteVersion(root, registry.Meta{Version: "v1"}, arts); err != nil {
		t.Fatalf("WriteVersion: %v", err)
	}
	reg, err := registry.Open(root)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	type event struct{ added, all, proposed []string }
	events := make(chan event, 4)
	w, err := registry.NewWatcher(reg, 0, func(added, all, proposed []string) {
		events <- event{added, all, proposed}
	})
	if err != nil {
		t.Fatalf("NewWatcher: %v", err)
	}
	defer w.Stop()

	// With polling disabled, publishing a version fires nothing on its
	// own — no timer exists to notice it.
	if _, err := registry.WriteVersion(root, registry.Meta{Version: "v2", Parent: "v1"}, arts); err != nil {
		t.Fatalf("WriteVersion v2: %v", err)
	}
	select {
	case ev := <-events:
		t.Fatalf("event without a rescan despite interval 0: %+v", ev)
	case <-time.After(150 * time.Millisecond):
	}

	// An explicit rescan (the SIGHUP path) still sees it.
	w.Rescan()
	select {
	case ev := <-events:
		if len(ev.added) != 1 || ev.added[0] != "v2" {
			t.Fatalf("event = %+v, want added [v2]", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rescan missed published version with polling disabled")
	}
}

func TestPartitionSplitsProposedFromPromoted(t *testing.T) {
	root := t.TempDir()
	arts := testArtifacts(t)
	for _, m := range []registry.Meta{
		{Version: "v1"},
		{Version: "v2", Parent: "v1"},
		{Version: "v2-refit-001", Parent: "v2", Proposed: true},
	} {
		if _, err := registry.WriteVersion(root, m, arts); err != nil {
			t.Fatalf("WriteVersion %s: %v", m.Version, err)
		}
	}
	reg, err := registry.Open(root)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	promoted, proposed, err := reg.Partition()
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if len(promoted) != 2 || promoted[0] != "v1" || promoted[1] != "v2" {
		t.Fatalf("promoted = %v, want [v1 v2]", promoted)
	}
	if len(proposed) != 1 || proposed[0] != "v2-refit-001" {
		t.Fatalf("proposed = %v, want [v2-refit-001]", proposed)
	}

	// The Proposed flag must survive the manifest round trip.
	man, err := reg.Manifest("v2-refit-001")
	if err != nil {
		t.Fatalf("Manifest: %v", err)
	}
	if !man.Proposed {
		t.Fatal("proposal manifest lost its Proposed flag")
	}
}
