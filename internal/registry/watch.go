package registry

import (
	"sync"
	"time"
)

// Watcher polls a registry root for newly published versions —
// fsnotify-free so it works on every filesystem — and also rescans on
// demand (cmd/osap-serve wires SIGHUP to Rescan). The onChange
// callback runs on the watcher goroutine with the sorted list of new
// versions, the full sorted version list, and the sorted subset of
// versions whose manifests are marked Proposed (unpromoted
// online-learning refits) — so operators see pending proposals
// surfaced distinctly rather than mixed into the promotable set. It
// is never called concurrently with itself.
type Watcher struct {
	reg      *Registry
	interval time.Duration
	onChange func(added, all, proposed []string)

	mu sync.Mutex
	//osap:guardedby mu
	known map[string]bool

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// NewWatcher primes the known-version set with the registry's current
// contents (so onChange only fires for versions published after the
// watcher starts) and begins watching. interval > 0 polls at that
// cadence; interval == 0 disables the timer entirely, leaving only
// on-demand rescans (Rescan / SIGHUP); interval < 0 defaults to 5s.
func NewWatcher(reg *Registry, interval time.Duration, onChange func(added, all, proposed []string)) (*Watcher, error) {
	if interval < 0 {
		interval = 5 * time.Second
	}
	initial, err := reg.Versions()
	if err != nil {
		return nil, err
	}
	w := &Watcher{
		reg:      reg,
		interval: interval,
		onChange: onChange,
		known:    make(map[string]bool, len(initial)),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, v := range initial {
		//osap:ignore guardedby construction: the watcher is not shared yet
		w.known[v] = true
	}
	go w.loop()
	return w, nil
}

// Rescan triggers an immediate poll (SIGHUP path). Non-blocking: a
// rescan already pending satisfies the request.
func (w *Watcher) Rescan() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// Stop halts the poll loop and waits for it to exit. onChange is not
// called after Stop returns.
func (w *Watcher) Stop() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

func (w *Watcher) loop() {
	defer close(w.done)
	var tick <-chan time.Time // nil (never fires) when polling is disabled
	if w.interval > 0 {
		t := time.NewTicker(w.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-w.stop:
			return
		case <-tick:
		case <-w.kick:
		}
		w.scan()
	}
}

func (w *Watcher) scan() {
	all, err := w.reg.Versions()
	if err != nil {
		return // transient FS error; next poll retries
	}
	var added []string
	w.mu.Lock()
	for _, v := range all {
		if !w.known[v] {
			w.known[v] = true
			added = append(added, v)
		}
	}
	w.mu.Unlock()
	if len(added) > 0 && w.onChange != nil {
		// Classify only when something changed: manifests are read
		// lazily so quiet polls stay a single ReadDir.
		_, proposed, err := w.reg.Partition()
		if err != nil {
			proposed = nil
		}
		w.onChange(added, all, proposed)
	}
}
