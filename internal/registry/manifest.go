// Package registry is the versioned artifact store behind hot-reload
// and canary rollout (DESIGN.md §11). Each version is a directory
// `<root>/<version>/` holding a manifest.json plus the checksummed
// osap-artifacts/v2 file(s) it names; the manifest records per-file
// SHA-256s and lineage (parent version), so a registry is a
// content-verified, append-only history of trained artifact sets.
//
// Publication is atomic: WriteVersion stages into a dot-prefixed temp
// directory and renames it into place, so a Watcher polling the root
// never observes a half-written version. The package itself never
// reads the wall clock — CreatedAt stamps are supplied by callers —
// and is listed in osap-vet's nondeterminism analyzer.
package registry

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ManifestFormat names the manifest envelope; bump on layout changes.
const ManifestFormat = "osap-registry/v1"

// ManifestName is the manifest's filename inside a version directory.
const ManifestName = "manifest.json"

// Manifest describes one published version: which files it contains
// (with their SHA-256s), which dataset the artifacts serve, and where
// the version came from.
type Manifest struct {
	Format  string `json:"format"`
	Version string `json:"version"`
	Dataset string `json:"dataset"`
	// CreatedAt is an informational RFC3339 stamp supplied by the
	// publisher; the registry never reads the clock itself.
	CreatedAt string `json:"created_at,omitempty"`
	// Parent is the version this one was trained or derived from
	// ("" for a root version); it forms the lineage chain.
	Parent string `json:"parent,omitempty"`
	Notes  string `json:"notes,omitempty"`
	// Proposed marks a version published by the online learner
	// (DESIGN.md §14) that has NOT been promoted: proposed versions
	// are never picked as a boot default and are surfaced separately
	// on /dashboard; staging one through the canary rollout is the
	// only way it ever serves.
	Proposed bool `json:"proposed,omitempty"`
	// Files maps artifact filename (no path separators) to the hex
	// SHA-256 of the file's exact bytes.
	Files map[string]string `json:"files"`
}

// ValidVersion reports whether name is usable as a version directory:
// non-empty, no path separators, not dot-prefixed (dot-prefixed names
// are reserved for staging temp dirs).
func ValidVersion(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// validFileName accepts plain filenames only — a manifest must not be
// able to address files outside its own version directory.
func validFileName(name string) bool {
	if name == "" || len(name) > 255 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		switch name[i] {
		case '/', '\\', 0:
			return false
		}
	}
	return true
}

// isHexSHA256 reports whether s is a 64-char lowercase hex digest.
func isHexSHA256(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Validate checks internal consistency: format, version and file
// names, and digest shapes. It does not touch the filesystem.
func (m *Manifest) Validate() error {
	if m.Format != ManifestFormat {
		return fmt.Errorf("registry: manifest format %q, want %q", m.Format, ManifestFormat)
	}
	if !ValidVersion(m.Version) {
		return fmt.Errorf("registry: invalid version name %q", m.Version)
	}
	if m.Parent != "" && !ValidVersion(m.Parent) {
		return fmt.Errorf("registry: invalid parent version %q", m.Parent)
	}
	if m.Dataset == "" {
		return fmt.Errorf("registry: manifest %s: missing dataset", m.Version)
	}
	if len(m.Files) == 0 {
		return fmt.Errorf("registry: manifest %s: no files", m.Version)
	}
	for _, name := range m.FileNames() {
		if !validFileName(name) {
			return fmt.Errorf("registry: manifest %s: invalid file name %q", m.Version, name)
		}
		if sum := m.Files[name]; !isHexSHA256(sum) {
			return fmt.Errorf("registry: manifest %s: file %s: malformed sha256 %q", m.Version, name, sum)
		}
	}
	return nil
}

// FileNames returns the manifest's file names in sorted order, so
// every walk over the file set is deterministic.
func (m *Manifest) FileNames() []string {
	names := make([]string, len(m.Files))
	i := 0
	for name := range m.Files {
		names[i] = name
		i++
	}
	sort.Strings(names)
	return names
}

// ParseManifest decodes and validates a manifest document.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("registry: decode manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Encode renders the manifest as indented JSON (stable key order via
// encoding/json's struct + sorted-map encoding).
func (m *Manifest) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("registry: encode manifest: %w", err)
	}
	return append(data, '\n'), nil
}
