package registry_test

import (
	"bytes"
	"testing"

	"osap/internal/registry"
)

// FuzzManifest fuzzes manifest parsing: arbitrary bytes must either
// be rejected or yield a manifest that validates and round-trips
// through Encode/ParseManifest unchanged. Parsing must never panic —
// manifests arrive from disk, and a corrupted registry must degrade
// to an error, not a crash.
func FuzzManifest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"format":"osap-registry/v1","version":"v1","dataset":"synthetic",` +
		`"files":{"synthetic.json":"` + string(bytes.Repeat([]byte("ab"), 32)) + `"}}`))
	f.Add([]byte(`{"format":"osap-registry/v1","version":"v2","dataset":"fcc","parent":"v1",` +
		`"created_at":"2026-08-08T00:00:00Z","notes":"n",` +
		`"files":{"fcc.json":"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"}}`))
	f.Add([]byte(`{"format":"osap-registry/v1","version":"../evil","dataset":"x","files":{"a":"b"}}`))
	f.Add([]byte(`{"format":"osap-registry/v1","version":"v1","dataset":"x","files":{"../../etc/passwd":` +
		`"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"}}`))
	f.Add([]byte(`{"format":"osap-registry/v9","version":"v1","dataset":"x","files":{"a.json":"00"}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := registry.ParseManifest(data)
		if err != nil {
			return
		}
		// Anything accepted must satisfy the invariants downstream
		// code relies on.
		if err := m.Validate(); err != nil {
			t.Fatalf("parsed manifest fails Validate: %v", err)
		}
		if !registry.ValidVersion(m.Version) {
			t.Fatalf("accepted invalid version %q", m.Version)
		}
		names := m.FileNames()
		if len(names) == 0 {
			t.Fatal("accepted manifest with no files")
		}
		for _, n := range names {
			if bytes.ContainsAny([]byte(n), "/\\") || n == "" || n[0] == '.' {
				t.Fatalf("accepted path-escaping file name %q", n)
			}
		}
		// Round trip: Encode then re-parse must preserve the manifest.
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("Encode of valid manifest failed: %v", err)
		}
		m2, err := registry.ParseManifest(enc)
		if err != nil {
			t.Fatalf("re-parse of encoded manifest failed: %v", err)
		}
		if m2.Version != m.Version || m2.Dataset != m.Dataset || m2.Parent != m.Parent ||
			m2.CreatedAt != m.CreatedAt || m2.Notes != m.Notes || len(m2.Files) != len(m.Files) {
			t.Fatalf("round trip changed manifest: %+v vs %+v", m, m2)
		}
		for k, v := range m.Files {
			if m2.Files[k] != v {
				t.Fatalf("round trip changed file digest %s", k)
			}
		}
	})
}
