// Package buildinfo carries the version stamp shared by every osap
// binary. The Makefile injects the real value at link time:
//
//	go build -ldflags "-X osap/internal/buildinfo.Version=$(git describe)"
//
// Unstamped builds report "dev".
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
)

// Version is the build's version string, settable via -ldflags -X.
var Version = "dev"

// Print writes the canonical one-line version banner for a command.
func Print(w io.Writer, cmd string) {
	fmt.Fprintf(w, "%s %s (%s %s/%s)\n", cmd, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
