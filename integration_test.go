package osap_test

import (
	"testing"

	"osap"
	"osap/internal/abr"
	"osap/internal/experiments"
	"osap/internal/netem"
	"osap/internal/rl"
	"osap/internal/stats"
	"osap/internal/trace"
)

// TestGuardOverPacketEmulator composes the full stack at packet
// granularity: quick-trained artifacts drive an ND guard streaming
// through the MahiMahi-style emulated environment (not the analytic
// simulator they were trained on). The guard must function and default
// under a distribution shift.
func TestGuardOverPacketEmulator(t *testing.T) {
	lab, err := experiments.NewLab(experiments.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := lab.Artifacts(trace.DatasetGamma22)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lab.Config()

	sigCfg := osap.StateSignalConfig{ThroughputWindow: cfg.ThroughputWindow, K: a.OCSVM.Dim / 2}
	sig, err := osap.NewStateSignal(a.OCSVM, abr.LastThroughputMbps, sigCfg)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := osap.NewGuard(
		rl.GreedyPolicy{P: a.Agents[0]},
		abr.NewBBPolicy(cfg.EvalVideo.NumLevels()),
		sig,
		osap.NewTrigger(osap.StateTriggerConfig()),
	)
	if err != nil {
		t.Fatal(err)
	}

	packetEnv := func(gen trace.Generator) *netem.Env {
		rng := stats.NewRNG(7)
		traces := []*trace.Trace{gen.Generate(rng, 300), gen.Generate(rng, 300)}
		ec := netem.DefaultEnvConfig(cfg.EvalVideo, traces)
		env, err := netem.NewEnv(ec)
		if err != nil {
			t.Fatal(err)
		}
		return env
	}

	// In-distribution (the guard's training distribution): episodes
	// complete with finite QoE.
	inGen, err := trace.GeneratorFor(trace.DatasetGamma22)
	if err != nil {
		t.Fatal(err)
	}
	inRes := osap.EvaluateGuard(packetEnv(inGen), guard, osap.NewRNG(1), 3)
	for _, r := range inRes {
		if r.Steps != cfg.EvalVideo.NumChunks() {
			t.Fatalf("episode ran %d steps, want %d", r.Steps, cfg.EvalVideo.NumChunks())
		}
	}

	// Distribution shift on the packet backend: the guard should
	// default in most episodes.
	outGen, err := trace.GeneratorFor(trace.DatasetExponential)
	if err != nil {
		t.Fatal(err)
	}
	outRes := osap.EvaluateGuard(packetEnv(outGen), guard, osap.NewRNG(2), 3)
	switched := 0
	for _, r := range outRes {
		if r.SwitchStep >= 0 {
			switched++
		}
	}
	if switched == 0 {
		t.Error("guard never defaulted under distribution shift on the packet backend")
	}
	// The guarded OOD QoE must beat vanilla Pensieve's on the same
	// environment and seeds.
	vanilla := stats.Mean(evalPolicy(t, packetEnv(outGen), rl.GreedyPolicy{P: a.Agents[0]}, 3))
	if osap.MeanQoE(outRes) <= vanilla {
		t.Errorf("guard (%v) did not improve on vanilla (%v) OOD at packet level",
			osap.MeanQoE(outRes), vanilla)
	}
}

func evalPolicy(t *testing.T, env osap.Env, p osap.Policy, episodes int) []float64 {
	t.Helper()
	rng := osap.NewRNG(2)
	out := make([]float64, episodes)
	for i := range out {
		out[i] = osap.Rollout(env, p, rng, 0).TotalReward()
	}
	return out
}
